"""The distributed sweep coordinator: enqueue, tail, assemble.

``repro sweep --distributed`` drives this runner instead of the
in-process pool.  It enqueues the grid into the filesystem broker
(co-located under the result cache), optionally launches local worker
processes, then *tails* the queue's done records — streaming each
completed cell into the same ``on_cell`` callback the pool path uses —
and finally assembles the grid-ordered :class:`~repro.sweep.runner
.SweepResult` from the cache.

The coordinator is not special: it holds no locks and does no cell
work, so killing and restarting it against the same queue attaches to
the surviving state (the enqueue is idempotent for an identical grid).
Expired leases are reclaimed from here too, so even a fleet that dies
entirely makes progress again as soon as one worker — or just the
coordinator plus one new worker — comes back.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import Iterable, Optional, Union

from repro import obs
from repro.obs import publish as obs_publish
from repro.sweep.banks import BankCache
from repro.sweep.cache import SweepCache
from repro.sweep.distrib.faults import FaultPlan
from repro.sweep.distrib.queue import DEFAULT_LEASE_TTL, TaskQueue
from repro.sweep.distrib.retry import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_MAX_ATTEMPTS,
)
from repro.sweep.distrib.supervisor import WorkerSupervisor
from repro.sweep.runner import (
    CellResult,
    SweepCellError,
    SweepResult,
    resolve_caches,
    shard_cells,
)
from repro.sweep.scenario import Scenario, ScenarioGrid


def _relative_to_queue(target: Path, queue_root: Path) -> str:
    """Record cache locations relative to the queue so the directory
    tree stays self-describing when mounted elsewhere."""
    try:
        return os.path.relpath(target, queue_root)
    except ValueError:  # different drives (Windows) — keep absolute
        return str(target)


class SweepCancelled(RuntimeError):
    """The sweep was stopped through its ``stop`` event before draining.

    Not a failure: the queue survives exactly as it was (pending tasks,
    leases, done records), so the caller decides whether to retire it
    (``repro serve``'s cancel endpoint does) or leave it for a later
    resume.  ``completed`` holds the cells that finished before the
    stop; ``outstanding`` the task names that did not.
    """

    def __init__(
        self, completed: list[CellResult], outstanding: list[str]
    ) -> None:
        self.completed = list(completed)
        self.outstanding = list(outstanding)
        super().__init__(
            f"sweep cancelled with {len(self.outstanding)} cell(s) "
            f"outstanding ({len(self.completed)} completed)"
        )


class AdaptiveDelay:
    """The tail loop's idle backoff, reusable anywhere records trickle.

    Tight (``floor``) while progress streams, decaying 1.5x per idle
    poll toward ``cap``, snapping back to the floor the moment anything
    arrives — a tailer over a slow producer stops burning a scan per
    floor-interval, yet reacts at full speed when completions stream
    again.  Purely relative durations: no wall-clock deadline is ever
    computed, so the backoff is immune to clock skew by construction.
    """

    def __init__(self, floor: float, cap: float) -> None:
        self.floor = float(floor)
        self.cap = max(float(cap), self.floor)
        self._delay = self.floor

    @property
    def current(self) -> float:
        return self._delay

    def progress(self) -> None:
        self._delay = self.floor

    def idle(self) -> float:
        self._delay = min(self.cap, self._delay * 1.5)
        return self._delay


def tail_done_records(
    queue,
    cache: SweepCache,
    by_name: dict,
    rank: dict,
    outstanding: set,
    emit,
    failures: list,
    failure_details: list,
    *,
    poll_interval: float = 0.2,
    fail_fast: bool = False,
    timeout: Optional[float] = None,
    supervisor=None,
    completion_records: Optional[dict] = None,
    stop=None,
) -> None:
    """Stream done records into ``emit`` until the queue drains.

    The one tail implementation every consumer shares — the
    ``repro sweep --distributed`` coordinator and the ``repro serve``
    job runner alike — so the shared-mount visibility grace, the
    adaptive idle backoff, the expired-lease reclaim, and the
    vanished-task self-heal exist exactly once.

    ``outstanding`` is mutated in place: whatever remains when the
    function returns is what did not finish (non-empty only on
    ``fail_fast`` or a ``stop``).  ``stop`` is an optional
    :class:`threading.Event`; setting it makes the tail return at the
    next poll without touching queue state, so a cancel is graceful by
    construction.  ``timeout`` (seconds) bounds the loop for tests.
    """
    seen = set(by_name) - outstanding  # cache hits already emitted
    deadline = None if timeout is None else time.monotonic() + timeout
    # On a shared mount (NFS/EFS) a done record can become visible
    # to this machine before the worker's cache summary does
    # (attribute/negative-entry caching): give a missing summary a
    # grace window before declaring the cell broken.
    summary_grace = max(10.0, 4 * poll_interval)
    summary_missing_since: dict[str, float] = {}
    # Adaptive poll: tight while records arrive, decaying toward the
    # grace window when idle — a coordinator tailing a slow remote
    # fleet stops burning a scan per poll_interval, yet reacts at full
    # speed the moment completions stream again.
    idle = AdaptiveDelay(poll_interval, summary_grace)

    def note_done(name: str) -> None:
        # Done-record tail latency: how long the record sat on the
        # mount before this tail consumed it.  A *difference* of
        # wall-clock readings (mount mtime vs. now), clamped at zero
        # against skew — never an absolute deadline.
        try:
            age = time.time() - os.stat(queue.done_dir / name).st_mtime
        except (OSError, AttributeError, TypeError):
            return
        obs.observe("repro_coordinator_tail_latency_seconds", max(0.0, age))

    while outstanding:
        if stop is not None and stop.is_set():
            return
        progressed = False
        for name in queue.done_names():
            if name in seen or name not in by_name:
                continue
            scenario = by_name[name]
            record = queue.done_record(name) or {}
            if record.get("ok"):
                summary = cache.load(scenario)
                if summary is None:
                    first = summary_missing_since.setdefault(
                        name, time.monotonic()
                    )
                    if time.monotonic() - first < summary_grace:
                        continue  # keep outstanding; re-poll
                    seen.add(name)
                    note_done(name)
                    outstanding.discard(name)
                    progressed = True
                    if completion_records is not None:
                        completion_records[name] = record
                    failures.append(
                        (scenario, "completed cell missing from the result cache")
                    )
                    failure_details.append(queue.failure_entry(name))
                    continue
                summary_missing_since.pop(name, None)
                seen.add(name)
                note_done(name)
                outstanding.discard(name)
                progressed = True
                if completion_records is not None:
                    completion_records[name] = record
                emit(
                    CellResult(
                        scenario,
                        summary,
                        # A re-lease that found its predecessor's
                        # summary already persisted did not execute.
                        cached=bool(record.get("from_cache")),
                        bank_trainings=int(record.get("bank_trainings", 0)),
                        seconds=float(record.get("seconds", 0.0) or 0.0),
                        attempt=int(record.get("attempt", 1) or 1),
                    )
                )
            else:
                seen.add(name)
                note_done(name)
                outstanding.discard(name)
                progressed = True
                if completion_records is not None:
                    completion_records[name] = record
                failures.append(
                    (scenario, record.get("error") or "worker reported failure")
                )
                failure_details.append(queue.failure_entry(name))
        if failures and fail_fast:
            # Abort the tail: the queue (leases, pending tasks,
            # records) survives as-is for post-mortem or --resume.
            return
        if not outstanding:
            break
        queue.reclaim_expired()
        if supervisor is not None:
            restarted = supervisor.tick()
            if restarted:
                obs.inc("repro_worker_restarts_total", restarted)
        # Self-heal vanished tasks: an outstanding cell with no
        # task, lease, or done record cannot finish on its own (a
        # worker quarantined its corrupt task file, or someone
        # deleted it) — rewrite the task from the manifest.  The
        # scan order (tasks, then in-flight leases including
        # claim-temps, then done) matches the claim and completion
        # transitions, so a cell mid-move is always seen in at
        # least one of the three.
        pending = queue.pending_names()
        obs.set_gauge("repro_queue_depth", len(pending))
        present = (
            set(pending)
            | set(queue.inflight_names())
            | set(queue.done_names())
        )
        for name in outstanding - present:
            queue.ensure_pending(name, by_name[name], rank[name])
            obs.inc("repro_coordinator_heals_total")
        # A locally-spawned fleet that has died entirely — every
        # slot's process exited *and* every slot's restart budget
        # is spent — can never drain the queue; a worker only exits
        # this early on a crash (clean exits need the sweep
        # complete or the queue retired), so hanging silently would
        # hide a real failure.  External fleets (jobs=0, or anyone
        # holding a live lease) are unaffected — and a cell whose
        # done record landed after this iteration's scan (`present`
        # sees it) is not grounds to raise: the next iteration
        # consumes it.
        if (
            supervisor is not None
            and supervisor.fleet_dead()
            and not queue.inflight_names()
            and outstanding - set(queue.done_names())
        ):
            raise RuntimeError(
                f"local sweep-worker fleet died (restarted "
                f"{supervisor.restart_count} time(s), budget spent) with "
                f"{len(outstanding)} cell(s) outstanding "
                f"(queue: {queue.root}); see {queue.root / 'logs'} for "
                "worker output; external workers can still drain it, "
                "or rerun to respawn the local fleet"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"distributed sweep timed out with {len(outstanding)} cell(s) "
                f"outstanding (queue: {queue.root})"
            )
        if progressed:
            idle.progress()
        else:
            idle.idle()
        delay = idle.current
        if supervisor is not None and supervisor.pending_restart():
            # Never let the idle backoff postpone a self-heal.
            delay = poll_interval
        if stop is not None:
            # A stop must interrupt the sleep too, or a cancel waits
            # out a full idle backoff before being noticed.
            stop.wait(delay)
        else:
            time.sleep(delay)


def spawn_local_worker(
    queue_root: Path,
    poll_interval: float = 0.2,
    stdout=subprocess.DEVNULL,
    fault_plan: Union[str, Path, None] = None,
) -> subprocess.Popen:
    """Start one independent ``repro sweep-worker`` process.

    A real subprocess, not a fork from a pool: local workers are the
    same animal as remote ones, so the coordinator's crash-recovery
    story is exercised identically either way.
    """
    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "sweep-worker",
        "--queue",
        str(queue_root),
        "--poll",
        str(poll_interval),
    ]
    if fault_plan is not None:
        argv += ["--fault-plan", str(fault_plan)]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=stdout,
        stderr=subprocess.STDOUT,
    )


class DistributedSweepRunner:
    """Executes a grid through the filesystem broker.

    Args:
        cache: Result-cache directory (or :class:`SweepCache`);
            **required** — completed summaries travel from workers to
            the coordinator through it.
        queue_dir: Broker directory; defaults to ``<cache>/queue``.
        jobs: Local worker processes to launch; 0 coordinates only
            (external ``repro sweep-worker`` processes do the work).
        resume: Reuse cached summaries instead of enqueueing them.
        bank_cache: As for :class:`~repro.sweep.runner.SweepRunner`.
        lease_ttl: Seconds without a heartbeat before a worker's cell
            is re-leased.
        poll_interval: Coordinator tail/reclaim cadence (the *floor*:
            the tail backs off adaptively toward the visibility grace
            while no records arrive).
        max_attempts: Per-task retry budget (manifest-recorded, so the
            whole fleet agrees); a cell failing this many attempts is
            quarantined into ``queue/failures/``.
        backoff_base / backoff_cap: Retry backoff schedule, seconds.
        fail_fast: Abort the tail on the first failed cell instead of
            draining the surviving grid.
        fault_plan: A :class:`FaultPlan`, or a path to its JSON, to
            rehearse outages — threaded through this coordinator's
            queue handle and every locally-spawned worker.
        fsync: Durability of queue/cache publishes (manifest-recorded).
        max_restarts: Per-slot respawn budget for the local fleet's
            :class:`WorkerSupervisor`.
    """

    def __init__(
        self,
        cache: Union[str, Path, SweepCache],
        queue_dir: Union[str, Path, None] = None,
        jobs: int = 1,
        resume: bool = False,
        bank_cache: Union[str, Path, BankCache, None, bool] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll_interval: float = 0.2,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        fail_fast: bool = False,
        fault_plan: Union[str, Path, FaultPlan, None] = None,
        fsync: bool = True,
        max_restarts: Optional[int] = None,
    ) -> None:
        if cache is None:
            raise ValueError("distributed sweeps require a result cache")
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0: {jobs}")
        if lease_ttl <= 0:
            raise ValueError(f"lease-ttl must be positive: {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max-attempts must be >= 1: {max_attempts}")
        self.cache, self.bank_cache = resolve_caches(cache, bank_cache)
        self.queue_dir = Path(queue_dir) if queue_dir else self.cache.queue_root
        self.jobs = jobs
        self.resume = resume
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.fail_fast = fail_fast
        self.fault_plan = (
            FaultPlan.load(fault_plan)
            if isinstance(fault_plan, (str, Path))
            else fault_plan
        )
        self.fsync = fsync
        self.max_restarts = max_restarts
        #: Local-fleet respawns performed by the supervisor in the last
        #: :meth:`run` (0 with ``jobs=0`` or a healthy fleet).
        self.worker_restarts = 0
        #: Live supervisor handle while :meth:`run` is tailing (exposes
        #: a mid-run restart count to ``repro serve`` status).
        self._supervisor = None
        #: Merged fleet snapshot (see ``repro.obs.publish.merge_fleet``)
        #: captured just before a successful run retires its queue.
        self.fleet_metrics: Optional[dict] = None

    # ------------------------------------------------------------------
    def _write_market_snapshots(self, scenarios) -> None:
        """Persist each seed's market dataset once for the whole fleet.

        Mirrors ``SweepRunner.write_market_snapshots``: one snapshot per
        seed under ``<cache>/markets/``, always the *default* dataset —
        exactly what a worker would regenerate without one.
        """
        from repro.analysis.context import TOTAL_DAYS
        from repro.market.dataset import generate_default_dataset
        from repro.market.snapshot import save_market_snapshot
        from repro.sweep.runner import market_snapshot_dir

        for seed in sorted({int(s.seed) for s in scenarios}):
            save_market_snapshot(
                generate_default_dataset(seed=seed, days=TOTAL_DAYS),
                market_snapshot_dir(self.cache.root, seed),
            )

    def run(
        self,
        grid: Union[ScenarioGrid, Iterable[Scenario]],
        on_cell=None,
        timeout: Optional[float] = None,
        stop=None,
    ) -> SweepResult:
        """Enqueue, wait for the fleet to drain the queue, assemble.

        Matches ``SweepRunner.run`` semantics: ``on_cell`` streams in
        completion order (cache hits first), failures drain siblings
        then raise :class:`SweepCellError`, and the returned result is
        in grid order — byte-identical to a serial run of the same
        grid.  ``timeout`` (seconds, ``None`` = wait forever) bounds
        the tail loop for tests.  ``stop`` is an optional
        :class:`threading.Event`: setting it makes the tail return at
        its next poll, local workers shut down gracefully, and
        :class:`SweepCancelled` is raised with whatever completed —
        the queue is left intact for the caller to retire or resume.
        """
        scenarios = list(grid)
        total = len(scenarios)
        done: dict[str, CellResult] = {}

        def emit(cell: CellResult) -> None:
            done[cell.scenario.fingerprint()] = cell
            if on_cell is not None:
                on_cell(len(done), total, cell)

        # The queue's identity is the *full* grid, never the
        # resume-filtered remainder: a resumed (or restarted)
        # coordinator thereby always matches the manifest of the sweep
        # it is resuming, whatever happens to be cached by now.  The
        # dispatch order is likewise jobs-independent — the fleet size
        # is unknowable here anyway, and a restart with a different
        # --jobs must still produce the manifest it is re-attaching to.
        # It is bucket-*contiguous* (each (seed, scale) group in one
        # run), not the pool path's round-robin: workers claim
        # smallest-name-first, so contiguity is what lets a worker's
        # context LRU serve consecutive claims instead of rebuilding a
        # different context per cell once the grid has more buckets
        # than LRU slots.
        ordered = [s for shard in shard_cells(scenarios, 1) for s in shard]
        banks_path = (
            _relative_to_queue(self.bank_cache.root, self.queue_dir)
            if self.bank_cache is not None
            else None
        )
        # The manifest is held back until the resume reconcile below is
        # done, so no worker can claim a cell this coordinator is about
        # to complete from the cache (attach blocks on the manifest).
        if self.fault_plan is not None:
            # One plan governs the whole fleet: hit counters live in a
            # shared state dir under the queue (so a rule with times=1
            # fires once *fleet-wide*, the coordinator's own enqueue
            # writes and restarted workers included).  Bound *before*
            # create, because create already fires injection sites.
            self.fault_plan.bind_state(Path(self.queue_dir) / "fault-state")
        queue = TaskQueue.create(
            self.queue_dir,
            ordered,
            cache_path=_relative_to_queue(self.cache.root, self.queue_dir),
            banks_path=banks_path,
            lease_ttl=self.lease_ttl,
            publish=False,
            max_attempts=self.max_attempts,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            fsync=self.fsync,
            faults=self.fault_plan,
        )
        worker_plan_path = None
        if self.fault_plan is not None:
            # The plan itself is materialised next to the manifest for
            # spawned — or manually attached — workers to load.
            worker_plan_path = queue.root / "fault-plan.json"
            queue._write_atomic(worker_plan_path, self.fault_plan.to_dict())
        by_name = queue.scenarios_by_name(ordered)

        #: name -> completion record for this run (how each cell was
        #: satisfied: which worker, which attempt, cached or executed) —
        #: queryable after ``run`` since the drained queue is retired.
        self.completion_records: dict[str, dict] = {}

        outstanding = set(by_name)
        rank = {name: seq for seq, name in enumerate(queue.manifest["tasks"])}

        # Clear crashed-worker debris *before* judging done records: a
        # worker killed between mark_done's write and its lease unlink
        # leaves a lease that shadows the done record — ensure_pending
        # would skip the cell as in-flight, and the stale record would
        # then replay.  reclaim_expired drops exactly those leases (a
        # lease whose done record exists is garbage by contract).
        queue.reclaim_expired()

        # Surviving done records go back into play exactly as
        # SweepRunner would treat them: without --resume, history is
        # not trusted at all and every settled cell re-executes; with
        # --resume, only unusable records reopen — ok=False (which
        # would otherwise re-raise the same SweepCellError forever)
        # and ok=True records whose cache summary has since vanished
        # (which would otherwise fail every future run as 'completed
        # cell missing from the result cache').  In-flight leases are
        # never touched either way.
        for name in queue.done_names():
            record = queue.done_record(name)
            if record is None or name not in by_name:
                continue
            if (
                not self.resume
                or not record.get("ok")
                or self.cache.load(by_name[name]) is None
            ):
                queue.ensure_pending(name, by_name[name], rank[name])
        if not self.resume:
            # Strip attempt counts inherited from a previous fleet's
            # requeued leases, so no task claims at attempt > 1 and
            # short-circuits to the cached summary — this run's
            # contract is to re-execute.
            queue.reset_pending_attempts()

        if self.resume:
            # Reconcile the queue against the cache (the source of
            # truth under --resume): cached cells complete without a
            # worker ever touching them, uncached cells go (back) into
            # play even if a previous fleet had marked them done.
            name_of = {s.fingerprint(): n for n, s in by_name.items()}
            for scenario in scenarios:  # grid order, like SweepRunner
                name = name_of[scenario.fingerprint()]
                summary = self.cache.load(scenario)
                if summary is None:
                    queue.ensure_pending(name, scenario, rank[name])
                    continue
                record = {
                    "ok": True,
                    "error": None,
                    "fingerprint": scenario.fingerprint(),
                    "worker": "coordinator-resume",
                    "attempt": 0,
                    "bank_trainings": 0,
                    "from_cache": True,
                }
                queue.complete_cached(name, record)
                self.completion_records[name] = record
                outstanding.discard(name)
                emit(CellResult(scenario, summary, cached=True))

        # Market snapshots land before the manifest publishes, so every
        # worker that can see tasks can also see the mmap-able traces
        # (workers fall back to regeneration if a snapshot is absent —
        # same bytes either way, just slower).
        self._write_market_snapshots(scenarios)

        queue.publish_manifest()
        failures: list[tuple[Scenario, str]] = []
        failure_details: list[Optional[dict]] = []
        # Local workers log under the queue (rotated per slot by the
        # supervisor): kept exactly as long as diagnostics can matter —
        # a failed or interrupted sweep leaves them for post-mortem, a
        # successful one retires them with the queue.  The spawn
        # closure resolves ``spawn_local_worker`` at call time so tests
        # can stub the module global; crashed workers are respawned
        # with capped, jittered backoff until their slot's budget runs
        # out.
        supervisor = WorkerSupervisor(
            min(self.jobs, len(outstanding)),
            lambda stdout: spawn_local_worker(
                queue.root,
                poll_interval=self.poll_interval,
                stdout=stdout,
                fault_plan=worker_plan_path,
            ),
            logs_dir=queue.root / "logs",
            **(
                {} if self.max_restarts is None
                else {"max_restarts": self.max_restarts}
            ),
        )
        self._supervisor = supervisor
        try:
            supervisor.start()
            self._tail(
                queue,
                by_name,
                rank,
                outstanding,
                emit,
                failures,
                failure_details,
                timeout,
                supervisor,
                stop,
            )
        finally:
            supervisor.shutdown()
            self.worker_restarts = supervisor.restart_count

        if stop is not None and stop.is_set() and outstanding:
            # Cancelled, not failed: leases were drained gracefully
            # (local workers terminated above; external workers keep
            # their leases until the caller retires the queue and the
            # vanished manifest tells them to exit).
            raise SweepCancelled(list(done.values()), sorted(outstanding))
        if failures:
            # The queue survives a failed sweep: its error records and
            # pending state are what ``--resume`` retries from.  The
            # quarantine ledger's per-cell post-mortems (traceback,
            # worker ids, attempt history) ride along as ``details``.
            raise SweepCellError(
                failures,
                completed=list(done.values()),
                persisted=True,
                details=failure_details,
            )
        # Absorb the workers' published metric snapshots into this
        # process's registry *before* the queue (snapshots included) is
        # retired: fleet counters — claims, cell histograms, retries —
        # accumulate in worker processes, and this is the last moment
        # they are readable.  A post-run ``GET /metrics`` (or a test)
        # then deterministically shows fleet totals.
        self.fleet_metrics = obs_publish.merge_fleet(
            obs_publish.load_snapshots(queue.root)
        )
        obs.REGISTRY.absorb(self.fleet_metrics["metrics"])
        # A drained queue is coordination state, not results (those are
        # in the cache) — retire it, so a later identical sweep
        # re-executes like ``SweepRunner`` would instead of silently
        # replaying stale done records.  Lingering workers notice the
        # manifest vanish and exit.
        shutil.rmtree(queue.root, ignore_errors=True)
        return SweepResult(done[s.fingerprint()] for s in scenarios)

    # ------------------------------------------------------------------
    def _tail(
        self,
        queue,
        by_name,
        rank,
        outstanding,
        emit,
        failures,
        failure_details,
        timeout,
        supervisor=None,
        stop=None,
    ) -> None:
        """Stream done records into ``emit`` until the queue drains.

        Thin instance wrapper over :func:`tail_done_records` (the
        shared implementation also driving ``repro serve`` jobs);
        mutates ``outstanding`` in place so :meth:`run` can report
        what remained after a stop.
        """
        tail_done_records(
            queue,
            self.cache,
            by_name,
            rank,
            outstanding,
            emit,
            failures,
            failure_details,
            poll_interval=self.poll_interval,
            fail_fast=self.fail_fast,
            timeout=timeout,
            supervisor=supervisor,
            completion_records=self.completion_records,
            stop=stop,
        )
