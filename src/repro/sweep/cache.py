"""On-disk result cache keyed by scenario fingerprint.

One JSON file per completed cell, written atomically and serialised
canonically (sorted keys, no whitespace), so the same cell always
produces byte-identical files — the determinism regression tests
compare these bytes directly, and ``--resume`` loads them instead of
re-simulating.

The cache root also co-locates the predictor-bank cache (schema v3):
the :data:`BANKS_SUBDIR` subdirectory holds one
:class:`repro.sweep.banks.BankCache` artifact per trained bank, so a
single ``--cache-dir`` carries both the cell summaries and the models
they were computed with.  Cell entries live flat in the root
(``<fingerprint>.json``), so the non-recursive globs here never
confuse bank metadata for cell summaries.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Optional

from repro import obs
from repro.sweep.scenario import SCHEMA_VERSION, Scenario

#: Temp files older than this are orphans of a killed writer (a live
#: write holds its temp for milliseconds) and are swept on open.
_STALE_TMP_SECONDS = 3600.0

#: Subdirectory of a result-cache root where the predictor-bank cache
#: co-locates by default (``SweepRunner`` uses it unless given an
#: explicit bank-cache location).
BANKS_SUBDIR = "banks"

#: Subdirectory of a result-cache root where the distributed task
#: queue co-locates by default — a shared mount (or rsync'd directory)
#: of the cache root is then the only "network" a worker fleet needs.
QUEUE_SUBDIR = "queue"

#: Subdirectory of a result-cache root holding one mmap-able market
#: snapshot per seed (see :mod:`repro.market.snapshot`): the sweep
#: parent writes each seed's price traces once, every worker — pool or
#: distributed — memory-maps them instead of regenerating.
MARKETS_SUBDIR = "markets"

#: Subdirectory of a result-cache root where ``repro serve`` keeps its
#: job registry (one directory per submitted sweep: job record, event
#: log, per-job queue, assembled result) — multiple concurrent tenants
#: share the one cache root, and the registry rides along with it.
SERVE_SUBDIR = "serve"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sweep_out_text(summaries: Any) -> str:
    """The byte-exact ``repro sweep --out`` payload for ``summaries``.

    Grid-ordered canonical JSON plus one trailing newline — the single
    definition every producer shares (CLI ``--out``, the serve API's
    ``/result`` body), so "byte-identical to a serial run" is checked
    against one serialisation, not two copies of it.
    """
    return canonical_json(list(summaries)) + "\n"


def mount_now(directory: Path) -> float:
    """The filesystem's idea of "now" in ``directory``: the mtime it
    stamps on a fresh write.

    Stale-tmp GC compares ages against mtimes that *other hosts'*
    writes produced on a shared mount; judging them by the local wall
    clock imports the full cross-host skew — a local clock running an
    hour fast reaps a live writer's temp file mid-publish.  A probe
    write samples the same clock domain the candidate mtimes came
    from, so the comparison is skew-free.  Falls back to the local
    clock when the probe cannot be written (read-only mount) — the
    age gate then degrades to its old behaviour rather than failing.
    """
    probe = directory / f".clock-probe.{os.getpid()}"
    try:
        # The probe is an empty scratch file sampled for its mtime and
        # unlinked immediately; nothing reads its (zero) bytes, so
        # durability is meaningless here.
        # repro-lint: ignore[durable-publish] mtime probe, content-free
        with open(probe, "w"):
            pass
        return probe.stat().st_mtime
    except OSError:
        return time.time()
    finally:
        try:
            os.unlink(probe)
        except OSError:
            pass


def fsync_write_text(path: Path, text: str, *, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` and (optionally) fsync the file.

    The write-then-rename idiom is atomic for *visibility* but not
    *durability*: without an fsync before the rename, a host crash can
    leave the renamed name pointing at bytes that never reached disk.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())


def fsync_file(path: Path) -> None:
    """Fsync an already-written file by path.

    For payloads a library wrote for us (e.g. ``np.savez`` weight
    archives) where the write cannot go through
    :func:`fsync_write_text`: re-open read-only and flush the pages to
    the platter before the artifact is renamed into public view.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(directory: Path) -> None:
    """Fsync a directory so a completed rename survives a host crash.

    Best-effort: some filesystems refuse directory fsync (EINVAL on
    certain network mounts) — refusing is their durability statement,
    not a reason to fail the write.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SweepCache:
    """Fingerprint-keyed store of cell summaries under one directory."""

    def __init__(
        self,
        root: str | Path,
        sweep_stale: bool = True,
        fsync: bool = True,
        faults=None,
    ) -> None:
        self.root = Path(root)
        #: Durability for :meth:`store`: fsync file + parent directory
        #: before a summary counts as published (opt out with
        #: ``fsync=False`` for throwaway caches).
        self.fsync = fsync
        #: Optional :class:`~repro.sweep.distrib.faults.FaultPlan`;
        #: :meth:`store` fires the ``cache.store`` site through it.
        self.faults = faults
        self.root.mkdir(parents=True, exist_ok=True)
        if sweep_stale:
            self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by writers that were killed
        between write and rename.  Age-gated against the *mount's*
        clock (:func:`mount_now`) so a concurrent sweep's in-flight
        temp file is never pulled out from under it, even when this
        host's wall clock runs ahead of the filesystem's."""
        cutoff = mount_now(self.root) - _STALE_TMP_SECONDS
        for tmp in self.root.glob("*.json.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                continue  # already gone, or not ours to remove

    @property
    def banks_root(self) -> Path:
        """Where the co-located predictor-bank cache lives."""
        return self.root / BANKS_SUBDIR

    @property
    def queue_root(self) -> Path:
        """Where the co-located distributed task queue lives."""
        return self.root / QUEUE_SUBDIR

    @property
    def markets_root(self) -> Path:
        """Where the co-located per-seed market snapshots live."""
        return self.root / MARKETS_SUBDIR

    @property
    def serve_root(self) -> Path:
        """Where the co-located ``repro serve`` job registry lives."""
        return self.root / SERVE_SUBDIR

    def path_for(self, scenario: Scenario) -> Path:
        return self.root / f"{scenario.fingerprint()}.json"

    def load(self, scenario: Scenario) -> Optional[dict]:
        """The cached summary for ``scenario``, or ``None``.

        Entries from a different schema version, or whose recorded
        scenario does not match (a fingerprint collision or a stale
        hand-edited file), are ignored rather than trusted.
        """
        summary = self._load(scenario)
        obs.inc(
            "repro_cache_hits_total"
            if summary is not None
            else "repro_cache_misses_total"
        )
        return summary

    def _load(self, scenario: Scenario) -> Optional[dict]:
        path = self.path_for(scenario)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        if payload.get("scenario") != scenario.to_dict():
            return None
        return payload.get("summary")

    def store(self, scenario: Scenario, summary: dict) -> Path:
        """Atomically persist one cell's summary."""
        path = self.path_for(scenario)
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": scenario.fingerprint(),
            "scenario": scenario.to_dict(),
            "summary": summary,
        }
        if self.faults is not None:
            from repro.sweep.distrib import faults as faults_mod

            # An injected ENOSPC/EIO here rehearses a full disk at the
            # worst moment: the cell simulated fine, the summary can't
            # land.  The worker's retry budget must absorb it.
            faults_mod.perform(self.faults, "cache.store", scenario.fingerprint())
        # Worker processes (and concurrent sweeps sharing one cache
        # directory) may store simultaneously; a per-process temp name
        # keeps every write-then-rename private until the atomic swap.
        tmp = path.with_suffix(f".json.tmp{os.getpid()}")
        try:
            with obs.timer("repro_cache_store_seconds"):
                fsync_write_text(tmp, canonical_json(payload), fsync=self.fsync)
                os.replace(tmp, path)
                if self.fsync:
                    fsync_dir(path.parent)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
