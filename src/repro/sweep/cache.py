"""On-disk result cache keyed by scenario fingerprint.

One JSON file per completed cell, written atomically and serialised
canonically (sorted keys, no whitespace), so the same cell always
produces byte-identical files — the determinism regression tests
compare these bytes directly, and ``--resume`` loads them instead of
re-simulating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.sweep.scenario import SCHEMA_VERSION, Scenario


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SweepCache:
    """Fingerprint-keyed store of cell summaries under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, scenario: Scenario) -> Path:
        return self.root / f"{scenario.fingerprint()}.json"

    def load(self, scenario: Scenario) -> Optional[dict]:
        """The cached summary for ``scenario``, or ``None``.

        Entries from a different schema version, or whose recorded
        scenario does not match (a fingerprint collision or a stale
        hand-edited file), are ignored rather than trusted.
        """
        path = self.path_for(scenario)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        if payload.get("scenario") != scenario.to_dict():
            return None
        return payload.get("summary")

    def store(self, scenario: Scenario, summary: dict) -> Path:
        """Atomically persist one cell's summary."""
        path = self.path_for(scenario)
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": scenario.fingerprint(),
            "scenario": scenario.to_dict(),
            "summary": summary,
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(payload))
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
