"""Spot-market price data: traces, synthetic generation, features, labels.

The paper trains RevPred on the public Kaggle ``AWS Spot Pricing Market``
dataset (us-east-1, 2017-04-26 .. 2017-05-08).  That dataset is not
available offline, so this package provides a calibrated synthetic
generator producing traces with the same structure — sparse records,
stable and volatile markets, spikes above the on-demand price, diurnal
and workday signal — plus the exact preprocessing the paper describes:
interpolation to a 1-minute grid, the six engineered features, and the
Algorithm 2 trimmed-fluctuation max-price labeling.
"""

from repro.market.dataset import SpotPriceDataset, generate_default_dataset
from repro.market.features import (
    HISTORY_MINUTES,
    NUM_BASE_FEATURES,
    FeatureExtractor,
    PresentRecord,
)
from repro.market.labeling import (
    LabeledSample,
    build_training_set,
    fluctuation_delta,
    will_be_revoked,
)
from repro.market.synthetic import MarketModelParams, SyntheticMarketGenerator
from repro.market.trace import PriceTrace

__all__ = [
    "SpotPriceDataset",
    "generate_default_dataset",
    "HISTORY_MINUTES",
    "NUM_BASE_FEATURES",
    "FeatureExtractor",
    "PresentRecord",
    "LabeledSample",
    "build_training_set",
    "fluctuation_delta",
    "will_be_revoked",
    "MarketModelParams",
    "SyntheticMarketGenerator",
    "PriceTrace",
]
