"""Spot-price dataset: a collection of per-market traces with CSV I/O.

Mirrors the shape of the Kaggle ``AWS Spot Pricing Market`` dataset the
paper uses: one row per (timestamp, instance type, region, price) sparse
record.  ``generate_default_dataset`` produces the synthetic stand-in —
twelve days (2017-04-26 .. 2017-05-08 in simulated calendar) across the
Table III instance pool, matching the paper's experimental window.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.cloud.instance import DEFAULT_INSTANCE_POOL, InstanceType
from repro.market.synthetic import SyntheticMarketGenerator
from repro.market.trace import PriceTrace

CSV_HEADER = ("timestamp", "instance_type", "region", "price")


@dataclass
class SpotPriceDataset:
    """A set of price traces keyed by instance-type name."""

    traces: dict[str, PriceTrace] = field(default_factory=dict)

    def add(self, trace: PriceTrace) -> None:
        if trace.instance_type in self.traces:
            raise ValueError(f"duplicate trace for {trace.instance_type!r}")
        self.traces[trace.instance_type] = trace

    def __contains__(self, name: str) -> bool:
        return name in self.traces

    def __getitem__(self, name: str) -> PriceTrace:
        try:
            return self.traces[name]
        except KeyError:
            known = ", ".join(sorted(self.traces))
            raise KeyError(f"no trace for {name!r}; dataset has: {known}") from None

    def __iter__(self) -> Iterator[PriceTrace]:
        return iter(self.traces.values())

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def instance_types(self) -> list[str]:
        return sorted(self.traces)

    @property
    def start(self) -> float:
        """Latest start across traces (all markets usable from here)."""
        return max(trace.start for trace in self)

    @property
    def end(self) -> float:
        """Earliest end across traces (all markets usable until here)."""
        return min(trace.end for trace in self)

    def split(self, t: float) -> tuple["SpotPriceDataset", "SpotPriceDataset"]:
        """Split every trace at time ``t`` into (before, from-t-on)
        datasets — the paper trains RevPred on 04/26-05/04 and
        evaluates on 05/05-05/07."""
        if not (self.start < t < self.end):
            raise ValueError(f"split point {t} outside common span [{self.start}, {self.end}]")
        train = SpotPriceDataset()
        test = SpotPriceDataset()
        for trace in self:
            train.add(trace.window(trace.start, t))
            test.add(trace.window(t, trace.end))
        return train, test

    # ------------------------------------------------------------------
    # CSV round-trip (Kaggle dataset schema)
    # ------------------------------------------------------------------
    def save_csv(self, path: str | Path) -> None:
        """Write all traces as sparse records, sorted by market then time."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_HEADER)
            for name in self.instance_types:
                trace = self.traces[name]
                for t, price in zip(trace.times, trace.prices):
                    writer.writerow([f"{t:.3f}", name, trace.region, f"{price:.4f}"])

    @classmethod
    def load_csv(cls, path: str | Path) -> "SpotPriceDataset":
        """Read a dataset written by :meth:`save_csv`."""
        path = Path(path)
        rows_by_market: dict[str, list[tuple[float, float, str]]] = {}
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = tuple(next(reader))
            if header != CSV_HEADER:
                raise ValueError(f"unexpected CSV header {header!r}; want {CSV_HEADER!r}")
            for row in reader:
                timestamp, name, region, price = row
                rows_by_market.setdefault(name, []).append(
                    (float(timestamp), float(price), region)
                )
        dataset = cls()
        for name, rows in rows_by_market.items():
            rows.sort(key=lambda record: record[0])
            times = np.array([record[0] for record in rows])
            prices = np.array([record[1] for record in rows])
            dataset.add(PriceTrace(name, times, prices, region=rows[0][2]))
        return dataset


def generate_default_dataset(
    seed: int = 0,
    days: float = 12.0,
    instances: Iterable[InstanceType] = DEFAULT_INSTANCE_POOL,
) -> SpotPriceDataset:
    """The default synthetic dataset: twelve days across the Table III
    pool, one independent market per instance type."""
    generator = SyntheticMarketGenerator(seed)
    dataset = SpotPriceDataset()
    for instance in instances:
        dataset.add(generator.generate(instance, days=days))
    return dataset
