"""Mmap'd on-disk market snapshots shared across sweep workers.

An :class:`~repro.analysis.context.ExperimentContext` used to carry its
market dataset only in memory: every pool worker (and every distributed
fleet host) regenerated the full multi-market price history per
``(seed, scale)`` group, and spawn-style multiprocessing would have had
to pickle the whole context per task.  A snapshot makes the dataset a
shared artifact instead: the sweep parent (or the distributed
coordinator) writes each seed's traces once as raw float64 ``.npy``
files, and every worker memory-maps them read-only — one page-cache
copy per host, no per-task serialisation, no per-worker regeneration.

Byte-identity is preserved by construction: ``.npy`` round-trips
float64 arrays exactly, so a dataset loaded from a snapshot is
indistinguishable from the generated one and every downstream result
stays bitwise the same.

Layout (one directory per dataset)::

    <dir>/meta.json            # schema, markets: [{name, region}]
    <dir>/<market>.times.npy   # record timestamps, float64
    <dir>/<market>.prices.npy  # record prices, float64

Snapshots are written atomically (assemble under a process-unique temp
name, then rename), so concurrent writers on a shared mount are safe:
whoever wins the rename provides the (identical) artifact.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.market.dataset import SpotPriceDataset
from repro.market.trace import PriceTrace

#: Bump when the snapshot layout changes; other schemas read as absent.
SNAPSHOT_SCHEMA_VERSION = 1


def save_market_snapshot(dataset: SpotPriceDataset, directory: str | Path) -> Path:
    """Persist every trace of ``dataset`` under ``directory``.

    Idempotent and race-safe: if a complete snapshot already occupies
    the directory it is kept (a snapshot is a pure function of the
    dataset, so the occupant is identical); a partial or foreign
    occupant is replaced.
    """
    directory = Path(directory)
    if load_market_snapshot(directory, mmap=False) is not None:
        return directory
    meta = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "markets": [
            {"name": name, "region": dataset.traces[name].region}
            for name in dataset.instance_types
        ],
    }
    tmp = directory.with_name(f"{directory.name}.tmp{os.getpid()}")
    try:
        tmp.mkdir(parents=True, exist_ok=True)
        for name in dataset.instance_types:
            trace = dataset.traces[name]
            np.save(tmp / f"{name}.times.npy", np.asarray(trace.times, dtype=float))
            np.save(tmp / f"{name}.prices.npy", np.asarray(trace.prices, dtype=float))
        (tmp / "meta.json").write_text(
            json.dumps(meta, sort_keys=True, separators=(",", ":"))
        )
        try:
            os.rename(tmp, directory)
        except OSError:
            # Slot occupied.  A concurrent writer's complete snapshot
            # is identical — keep it; anything broken is replaced.
            if load_market_snapshot(directory, mmap=False) is not None:
                shutil.rmtree(tmp, ignore_errors=True)
            else:
                shutil.rmtree(directory, ignore_errors=True)
                os.rename(tmp, directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return directory


def load_market_snapshot(
    directory: str | Path, mmap: bool = True
) -> SpotPriceDataset | None:
    """Reconstruct the dataset stored under ``directory``, or ``None``.

    With ``mmap=True`` (the default) the arrays are memory-mapped
    read-only: workers on one host share the page cache instead of each
    materialising every market's history.  Any structural problem —
    missing directory, wrong schema, absent or unreadable arrays —
    reads as a miss so the caller falls back to regenerating.
    """
    directory = Path(directory)
    try:
        meta = json.loads((directory / "meta.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if meta.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        return None
    dataset = SpotPriceDataset()
    mmap_mode = "r" if mmap else None
    try:
        for market in meta["markets"]:
            name = market["name"]
            times = np.load(directory / f"{name}.times.npy", mmap_mode=mmap_mode)
            prices = np.load(directory / f"{name}.prices.npy", mmap_mode=mmap_mode)
            dataset.add(
                PriceTrace(name, times, prices, region=market.get("region", "us-east-1"))
            )
    except (OSError, KeyError, ValueError, TypeError):
        return None
    return dataset if len(dataset) else None
