"""Synthetic spot-market generator.

Substitute for the Kaggle ``AWS Spot Pricing Market`` dataset (offline
here).  Each market is a mean-reverting log-price process with a jump
(spike) component, diurnal and workday demand modulation, a price floor,
and the historical 10x-on-demand cap.  Spikes decay through the mean
reversion, reproducing the saw-tooth spikes of paper Fig. 1 where
r3.xlarge jumps from ~$0.30 to over $3 and relaxes back within hours.

Markets are generated on a 1-minute latent grid and then compressed to
sparse change-only records, matching the source dataset's format;
consumers re-interpolate to the 1-minute grid exactly as the paper
does.

The latent path is computed in closed form rather than minute-by-
minute: the mean-reversion recurrence is linear, so it is solved with
scaled exponentially-weighted cumulative sums (chunked so ``(1-kappa)^t``
never under/overflows), workday flags come arithmetically from the
epoch weekday, and the publish-threshold scan gallops over the
precomputed price array.  The original per-minute loop survives as
:mod:`repro.market.reference`, which the golden regression tests pin
this implementation against.

Calibration: the six experimental markets span the stability spectrum
the paper's discussion (§V-A) relies on — m4.* markets are stable (rare
revocations), r3.xlarge is highly volatile, the rest sit in between.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cloud.instance import InstanceType
from repro.market.trace import MINUTE, PriceTrace
from repro.sim.clock import DAY, workday_mask
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class MarketModelParams:
    """Parameters of one synthetic spot market.

    Attributes:
        base_discount: Baseline spot price as a fraction of on-demand
            (AWS spot discounts are 70-80%, so 0.2-0.3 is typical).
        mean_reversion: Per-minute pull of log-price toward baseline.
        volatility: Per-minute standard deviation of log-price noise.
        jump_rate_per_hour: Poisson arrival rate of demand spikes.
        jump_log_mean: Mean spike magnitude in log-price units
            (0.7 => ~2x price, 1.6 => ~5x).
        diurnal_amplitude: Log-price amplitude of the 24h demand cycle.
        workday_boost: Additional log-price level on Mon-Fri.
        floor_fraction: Minimum price as a fraction of on-demand.
        cap_multiple: Maximum price as a multiple of on-demand (AWS
            historically capped spot bids at 10x on-demand).
        publish_threshold: Relative move of the latent price required
            before the market publishes a new record.  Real spot markets
            re-price sparsely; stable markets publish a handful of
            records per day while volatile markets re-price minutely.
        turbulent_fraction: Stationary share of time the market spends
            in its turbulent regime.  Real spot markets show volatility
            clustering — demand surges arrive in bursts, not as a
            memoryless process — and that clustering is precisely the
            signal that makes next-hour revocation *learnable* from the
            past hour's features (RevPred's premise).
        regime_stay_probability: Per-minute probability of remaining in
            the current regime (0.995 => mean regime length ~3.3 h).
        turbulence_multiplier: Factor on jump rate and volatility while
            turbulent.
    """

    base_discount: float = 0.25
    mean_reversion: float = 0.015
    volatility: float = 0.004
    jump_rate_per_hour: float = 0.08
    jump_log_mean: float = 1.0
    diurnal_amplitude: float = 0.03
    workday_boost: float = 0.04
    floor_fraction: float = 0.10
    cap_multiple: float = 10.0
    publish_threshold: float = 0.01
    turbulent_fraction: float = 0.3
    regime_stay_probability: float = 0.995
    turbulence_multiplier: float = 8.0

    def __post_init__(self) -> None:
        if not 0 < self.base_discount < 1:
            raise ValueError(f"base_discount must be in (0, 1): {self.base_discount}")
        if self.mean_reversion <= 0 or self.mean_reversion >= 1:
            raise ValueError(f"mean_reversion must be in (0, 1): {self.mean_reversion}")
        if self.floor_fraction >= self.cap_multiple:
            raise ValueError("floor_fraction must be below cap_multiple")
        if not 0.0 <= self.turbulent_fraction < 1.0:
            raise ValueError(
                f"turbulent_fraction must be in [0, 1): {self.turbulent_fraction}"
            )
        if not 0.0 < self.regime_stay_probability < 1.0:
            raise ValueError(
                f"regime_stay_probability must be in (0, 1): {self.regime_stay_probability}"
            )
        if self.turbulence_multiplier < 1.0:
            raise ValueError(
                f"turbulence_multiplier must be >= 1: {self.turbulence_multiplier}"
            )
        if (
            self.turbulent_fraction > 0.0
            and self.turbulence_multiplier > 1.0
            and self.turbulent_entry_probability > 1.0
        ):
            # A large turbulent share combined with long sojourns would
            # need an entry "probability" above 1, so no chain with
            # this stationary share exists.  A multiplier of exactly 1
            # leaves the chain unsampled (the regimes are
            # indistinguishable), so it is not validated.
            raise ValueError(
                f"turbulent_fraction {self.turbulent_fraction} with "
                f"regime_stay_probability {self.regime_stay_probability} "
                f"implies a calm->turbulent entry probability of "
                f"{self.turbulent_entry_probability:.3f} > 1, so no Markov "
                "chain has that stationary turbulent share; lower "
                "turbulent_fraction or raise regime_stay_probability"
            )

    @property
    def turbulent_entry_probability(self) -> float:
        """P(calm -> turbulent) per minute, pinned by stationarity:
        ``pi_T * P(T->C) = pi_C * P(C->T)``."""
        return (
            (1.0 - self.regime_stay_probability)
            * self.turbulent_fraction
            / (1.0 - self.turbulent_fraction)
        )


#: Calibrated profiles for the experimental pool.  Stability ordering:
#: m4.4xlarge (most stable) .. r3.xlarge (most volatile, as in Fig. 1).
#: Volatile markets carry the deepest discounts while stable m4 markets
#: sit much closer to on-demand — the structure real spot markets show
#: and the one the paper's cost ratios imply (the fastest single-spot
#: baseline costs ~4x the cheapest, which needs the price gap to far
#: exceed the ~3x speed gap).
DEFAULT_MARKET_PROFILES: dict[str, MarketModelParams] = {
    "r3.xlarge": MarketModelParams(
        base_discount=0.22,
        volatility=0.015,
        jump_rate_per_hour=0.80,
        jump_log_mean=1.2,
        mean_reversion=0.020,
        turbulent_fraction=0.0,
    ),
    "r4.large": MarketModelParams(
        base_discount=0.24,
        volatility=0.008,
        jump_rate_per_hour=0.50,
        jump_log_mean=1.0,
        mean_reversion=0.016,
        turbulent_fraction=0.0,
    ),
    "r4.xlarge": MarketModelParams(
        base_discount=0.25,
        volatility=0.008,
        jump_rate_per_hour=0.45,
        jump_log_mean=1.0,
        mean_reversion=0.016,
        turbulent_fraction=0.0,
    ),
    "r4.2xlarge": MarketModelParams(
        base_discount=0.27,
        volatility=0.006,
        jump_rate_per_hour=0.30,
        jump_log_mean=0.9,
        turbulent_fraction=0.0,
    ),
    "m4.2xlarge": MarketModelParams(
        base_discount=0.40,
        volatility=0.0012,
        jump_rate_per_hour=0.05,
        jump_log_mean=0.6,
        turbulent_fraction=0.0,
    ),
    "m4.4xlarge": MarketModelParams(
        base_discount=0.45,
        volatility=0.0008,
        jump_rate_per_hour=0.03,
        jump_log_mean=0.5,
        turbulent_fraction=0.0,
    ),
    "t2.micro": MarketModelParams(
        base_discount=0.40,
        volatility=0.0008,
        jump_rate_per_hour=0.04,
        jump_log_mean=0.5,
        turbulent_fraction=0.0,
    ),
}


def params_for(instance_name: str) -> MarketModelParams:
    """Calibrated parameters for a known market, defaults otherwise."""
    return DEFAULT_MARKET_PROFILES.get(instance_name, MarketModelParams())


class SyntheticMarketGenerator:
    """Generates sparse spot-price traces for a set of instance markets.

    Different markets use independent random streams forked from the
    root seed, so their price fluctuations are uncorrelated — the paper
    notes this property of real spot markets ("price fluctuations among
    different markets are barely correlated", §II-A).
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = RngStream(seed, "market")

    def generate(
        self,
        instance: InstanceType,
        days: float = 12.0,
        start: float = 0.0,
        params: MarketModelParams | None = None,
    ) -> PriceTrace:
        """Generate a sparse trace for ``instance`` spanning ``days``.

        The latent log-price evolves per minute:
            x_{t+1} = x_t + kappa * (mu_t - x_t) + sigma_t * eps + jumps
        where mu_t carries the diurnal/workday demand level and sigma_t
        and the jump intensity follow a hidden calm/turbulent Markov
        regime (volatility clustering).  The market *publishes* a
        record only when the latent price has moved by more than
        ``publish_threshold`` relative to the last published price
        (clamped to [floor, cap], rounded to $0.0001), which yields the
        sparse change-only records of the source dataset.
        """
        if days <= 0:
            raise ValueError(f"days must be positive: {days}")
        p = params if params is not None else params_for(instance.name)
        rng = self._rng.fork(instance.name).generator

        n_minutes = int(round(days * DAY / MINUTE))
        times = start + np.arange(n_minutes) * MINUTE
        base_log = np.log(p.base_discount * instance.on_demand_price)
        floor = p.floor_fraction * instance.on_demand_price
        cap = p.cap_multiple * instance.on_demand_price

        demand = self._demand_level(times, p)
        turbulent = self._regime_path(n_minutes, p, rng)
        sigma = p.volatility * np.where(turbulent, np.sqrt(p.turbulence_multiplier), 1.0)
        jump_rate = p.jump_rate_per_hour * np.where(turbulent, p.turbulence_multiplier, 1.0)
        noise = rng.normal(0.0, 1.0, n_minutes) * sigma
        jump_mask = rng.random(n_minutes) < (jump_rate / 60.0)
        # Demand surges arrive as sharp one-minute jumps that mean
        # reversion then decays — the sawtooth shape of real spot
        # traces (Fig. 1).  Sharp jumps keep the pre-jump price low, so
        # a wrong "will revoke" bet still pays the calm price for its
        # hour, while the jump itself crosses the max price and
        # triggers the (refunded) revocation.
        jump_sizes = rng.exponential(p.jump_log_mean, n_minutes) * jump_mask

        target = base_log + demand
        latent = _mean_reversion_path(target, noise + jump_sizes, p.mean_reversion)
        prices = np.round(np.clip(np.exp(latent), floor, cap), 4)
        keep = _publish_indices(prices, p.publish_threshold)
        return PriceTrace(instance.name, times[keep], prices[keep]).compress()

    @staticmethod
    def _regime_path(
        n_minutes: int, p: MarketModelParams, rng: np.random.Generator
    ) -> np.ndarray:
        """Hidden calm/turbulent regime chain (volatility clustering).

        Transition probabilities are chosen so the stationary turbulent
        share equals ``turbulent_fraction`` while the mean sojourn time
        follows ``regime_stay_probability``.
        """
        if p.turbulent_fraction == 0.0 or p.turbulence_multiplier == 1.0:
            return np.zeros(n_minutes, dtype=bool)
        leave_turbulent = 1.0 - p.regime_stay_probability
        enter_turbulent = p.turbulent_entry_probability
        state = bool(rng.random() < p.turbulent_fraction)
        draws = rng.random(n_minutes)
        # The chain is sequential, but its transitions are sparse: from
        # a given state the path only flips at the first draw under
        # that state's threshold, so hop transition-to-transition
        # instead of minute-to-minute.  Both flip masks are
        # precomputed; the draw at the flip index affects the *next*
        # minute's state, exactly as the per-minute chain did.
        flip_from_turbulent = draws < leave_turbulent
        flip_from_calm = draws < enter_turbulent
        path = np.empty(n_minutes, dtype=bool)
        i = 0
        while i < n_minutes:
            mask = flip_from_turbulent if state else flip_from_calm
            j = _first_true(mask, i)
            if j < 0:
                path[i:] = state
                break
            path[i : j + 1] = state
            state = not state
            i = j + 1
        return path

    @staticmethod
    def _demand_level(times: np.ndarray, p: MarketModelParams) -> np.ndarray:
        """Diurnal + workday log-price demand offsets for each minute."""
        seconds_of_day = np.mod(times, DAY)
        # Demand peaks mid-afternoon UTC (hour 15), troughs at night.
        diurnal = p.diurnal_amplitude * np.sin(2 * np.pi * (seconds_of_day / DAY - 0.375))
        return diurnal + p.workday_boost * workday_mask(times)


def _mean_reversion_path(
    target: np.ndarray, shocks: np.ndarray, kappa: float
) -> np.ndarray:
    """Closed-form solution of the per-minute mean-reversion recurrence.

    Solves ``x[t] = x[t-1] + kappa * (target[t] - x[t-1]) + shocks[t]``
    with ``x[0] = target[0]`` (``shocks[0]`` is ignored, matching the
    loop formulation).  Writing ``a = 1 - kappa`` and ``b[t] =
    kappa * target[t] + shocks[t]`` the recurrence is linear, so within
    a chunk starting at ``s`` with carry ``c = x[s-1]``::

        x[s+j] = a^(j+1) * c + a^j * cumsum(b[s:s+j+1] * a^-m)[j]

    Chunks are sized so the ``a^-m`` rescaling stays within ``e^60`` —
    unchunked, ``(1-kappa)^t`` underflows (and its reciprocal
    overflows) after a few tens of thousands of minutes.
    """
    n = len(target)
    x = np.empty(n)
    x[0] = target[0]
    if n == 1:
        return x
    a = 1.0 - kappa
    b = kappa * target + shocks
    chunk = max(1, min(n - 1, int(60.0 / -math.log(a))))
    carry = x[0]
    s = 1
    while s < n:
        e = min(n, s + chunk)
        j = np.arange(e - s)
        weighted = np.cumsum(b[s:e] * a ** -j)
        x[s:e] = a ** (j + 1) * carry + a ** j * weighted
        carry = x[e - 1]
        s = e
    return x


def _first_true(mask: np.ndarray, start: int) -> int:
    """Index of the first ``True`` in ``mask[start:]``, or -1.

    Gallops in doubling blocks so dense masks answer from the first
    small block while sparse ones avoid re-scanning the prefix.
    """
    n = len(mask)
    lo, step = start, 64
    while lo < n:
        hi = min(n, lo + step)
        j = lo + int(mask[lo:hi].argmax())
        if mask[j]:
            return j
        lo, step = hi, step * 2
    return -1


def _publish_indices(prices: np.ndarray, threshold: float) -> np.ndarray:
    """Indices the market publishes: each record is the first minute
    whose quantised price moved more than ``threshold`` relative to the
    previously published one.

    Only minutes where the quantised price differs from the previous
    minute can publish — an unchanged price repeats a comparison that
    either just failed or just reset the reference — so the scan visits
    the (often sparse) change points only.  The comparison reproduces
    the reference loop's ``abs(candidate - published) / published >
    threshold`` float-for-float: Python floats and numpy float64
    scalars share IEEE-754 arithmetic.
    """
    candidates = np.flatnonzero(prices[1:] != prices[:-1]) + 1
    price_list = prices.tolist()
    published = price_list[0]
    keep = [0]
    for i in candidates.tolist():
        candidate = price_list[i]
        if abs(candidate - published) / published > threshold:
            published = candidate
            keep.append(i)
    return np.asarray(keep, dtype=np.intp)
