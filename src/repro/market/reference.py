"""Frozen per-minute loop market generator (the pre-vectorisation code).

This is the original ``SyntheticMarketGenerator.generate`` — one Python
iteration per simulated minute — kept verbatim as the recorded
reference implementation.  It is not on any production path: the golden
regression tests pin the vectorised generator's records against the
traces this loop produces, and the market-generation benchmark measures
the vectorisation speedup over it.  Do not "optimise" this module; its
value is that it never changes.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.instance import InstanceType
from repro.market.synthetic import MarketModelParams, params_for
from repro.market.trace import MINUTE, PriceTrace
from repro.sim.clock import DAY, to_datetime
from repro.sim.rng import RngStream


def _loop_regime_path(
    n_minutes: int, p: MarketModelParams, rng: np.random.Generator
) -> np.ndarray:
    """Per-element hidden calm/turbulent Markov chain."""
    if p.turbulent_fraction == 0.0 or p.turbulence_multiplier == 1.0:
        return np.zeros(n_minutes, dtype=bool)
    leave_turbulent = 1.0 - p.regime_stay_probability
    # Stationarity: pi_T * P(T->C) = pi_C * P(C->T).
    enter_turbulent = (
        leave_turbulent * p.turbulent_fraction / (1.0 - p.turbulent_fraction)
    )
    state = bool(rng.random() < p.turbulent_fraction)
    draws = rng.random(n_minutes)
    path = np.empty(n_minutes, dtype=bool)
    for i in range(n_minutes):
        path[i] = state
        threshold = leave_turbulent if state else enter_turbulent
        if draws[i] < threshold:
            state = not state
    return path


def _loop_demand_level(times: np.ndarray, p: MarketModelParams) -> np.ndarray:
    """Diurnal + workday offsets via per-element datetime conversion."""
    seconds_of_day = np.mod(times, DAY)
    diurnal = p.diurnal_amplitude * np.sin(2 * np.pi * (seconds_of_day / DAY - 0.375))
    workdays = np.fromiter(
        (to_datetime(t).weekday() < 5 for t in times), dtype=bool, count=len(times)
    )
    return diurnal + p.workday_boost * workdays


def generate_loop_reference(
    instance: InstanceType,
    days: float = 12.0,
    start: float = 0.0,
    params: MarketModelParams | None = None,
    seed: int = 0,
) -> PriceTrace:
    """Generate ``instance``'s trace with the original per-minute loop.

    Equivalent to ``SyntheticMarketGenerator(seed).generate(...)`` as
    the code stood before vectorisation (PR 2): same RNG fork chain,
    same draw order, same publish rule.
    """
    if days <= 0:
        raise ValueError(f"days must be positive: {days}")
    p = params if params is not None else params_for(instance.name)
    rng = RngStream(seed, "market").fork(instance.name).generator

    n_minutes = int(round(days * DAY / MINUTE))
    times = start + np.arange(n_minutes) * MINUTE
    base_log = np.log(p.base_discount * instance.on_demand_price)
    floor = p.floor_fraction * instance.on_demand_price
    cap = p.cap_multiple * instance.on_demand_price

    demand = _loop_demand_level(times, p)
    turbulent = _loop_regime_path(n_minutes, p, rng)
    sigma = p.volatility * np.where(turbulent, np.sqrt(p.turbulence_multiplier), 1.0)
    jump_rate = p.jump_rate_per_hour * np.where(turbulent, p.turbulence_multiplier, 1.0)
    noise = rng.normal(0.0, 1.0, n_minutes) * sigma
    jump_mask = rng.random(n_minutes) < (jump_rate / 60.0)
    jump_sizes = rng.exponential(p.jump_log_mean, n_minutes) * jump_mask

    def quantise(latent_log: float) -> float:
        return float(np.round(np.clip(np.exp(latent_log), floor, cap), 4))

    record_times = [float(times[0])]
    record_prices = [quantise(base_log + demand[0])]
    x = base_log + demand[0]
    published = record_prices[0]
    for i in range(1, n_minutes):
        target = base_log + demand[i]
        x = x + p.mean_reversion * (target - x) + noise[i] + jump_sizes[i]
        candidate = quantise(x)
        if abs(candidate - published) / published > p.publish_threshold:
            published = candidate
            record_times.append(float(times[i]))
            record_prices.append(candidate)

    return PriceTrace(
        instance.name, np.asarray(record_times), np.asarray(record_prices)
    ).compress()
