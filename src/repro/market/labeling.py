"""Training-set construction for revocation predictors.

Implements the paper's Algorithm 2: when building RevPred *training*
data, the candidate maximum price at time ``t`` is the current price
plus the trimmed-mean absolute fluctuation of the previous hour
(dropping the smallest 20% and largest 20% of one-minute deltas).  The
paper motivates this with active learning: such prices sit near the
revoked/not-revoked decision border, the most informative region.

Tributary's scheme — the baseline — draws the delta uniformly from
[0.00001, 0.2] instead.  At *inference* time both schemes use the
uniform draw (paper §III-B).

A sample at time ``t`` with maximum price ``b`` is labeled True when
the market price exceeds ``b`` at any point in the following hour,
i.e. the instance would be revoked within its first hour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.market.features import FeatureExtractor
from repro.market.trace import HOUR, MINUTE, PriceTrace
from repro.sim.rng import RngStream

#: Tributary's uniform max-price delta interval (paper §III-B).
UNIFORM_DELTA_LOW = 0.00001
UNIFORM_DELTA_HIGH = 0.2

DeltaMode = Literal["fluctuation", "uniform"]


@dataclass(frozen=True)
class LabeledSample:
    """One (features, label) pair for revocation prediction."""

    history: np.ndarray  # (59, 6)
    present: np.ndarray  # (7,)
    label: bool
    time: float
    max_price: float
    instance_type: str


@dataclass(frozen=True)
class TrainingSet:
    """Batched training arrays for a revocation predictor."""

    history: np.ndarray  # (N, 59, 6)
    present: np.ndarray  # (N, 7)
    labels: np.ndarray  # (N,), float {0.0, 1.0}
    times: np.ndarray  # (N,)
    instance_type: str

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def positive_fraction(self) -> float:
        """Share of revoked (True) samples, phi+ in the paper."""
        if len(self.labels) == 0:
            return 0.0
        return float(np.mean(self.labels))


def fluctuation_delta(trace: PriceTrace, t: float) -> float:
    """Algorithm 2: trimmed-mean one-minute price fluctuation.

    Collects |price[tau] - price[tau - 1min]| for each minute tau in the
    hour before ``t``, sorts them, sums the middle 60% (indices between
    0.2L and 0.8L exclusive) and divides by 0.6L — the paper divides by
    0.6L regardless of how many indices the strict inequalities admit,
    and we follow it exactly.
    """
    grid = np.arange(t - HOUR, t + MINUTE / 2, MINUTE)
    if grid[0] - MINUTE < trace.start:
        raise ValueError(
            f"fluctuation window at {t} needs one hour plus one minute of history"
        )
    prices = trace.price_at_many(grid)
    previous = trace.price_at_many(grid - MINUTE)
    deltas = np.sort(np.abs(prices - previous))
    length = len(deltas)
    lo = int(0.2 * length)
    hi = int(np.ceil(0.8 * length))
    middle = deltas[lo + 1 : hi] if hi - lo > 1 else deltas[lo:hi]
    return float(np.sum(middle) / (0.6 * length))


def will_be_revoked(
    trace: PriceTrace, t: float, max_price: float, horizon: float = HOUR
) -> bool:
    """True when the market price exceeds ``max_price`` within
    ``horizon`` seconds after ``t`` (the label definition)."""
    end = min(t + horizon, trace.end)
    return trace.first_time_above(max_price, t, end) is not None


def draw_uniform_delta(rng: RngStream) -> float:
    """Tributary's max-price delta, uniform on [0.00001, 0.2]."""
    return float(rng.uniform(UNIFORM_DELTA_LOW, UNIFORM_DELTA_HIGH))


def build_training_set(
    trace: PriceTrace,
    on_demand_price: float,
    sample_times: np.ndarray,
    rng: RngStream,
    delta_mode: DeltaMode = "fluctuation",
    horizon: float = HOUR,
) -> TrainingSet:
    """Build a labeled training set from a price trace.

    Args:
        trace: The market's price history.
        on_demand_price: Normalisation scale for price features.
        sample_times: Timestamps at which to cut samples.  Each must
            leave a full feature context before it and ``horizon``
            seconds of trace after it.
        rng: Random stream (used by the ``uniform`` delta mode).
        delta_mode: ``"fluctuation"`` for Algorithm 2 (RevPred
            training), ``"uniform"`` for Tributary-style training and
            for inference-time sampling of both models.
        horizon: Label look-ahead window (one hour in the paper).
    """
    extractor = FeatureExtractor(trace, on_demand_price)
    histories: list[np.ndarray] = []
    presents: list[np.ndarray] = []
    labels: list[float] = []
    kept_times: list[float] = []
    for t in np.asarray(sample_times, dtype=float):
        if t < extractor.earliest_sample_time or t + horizon > trace.end:
            continue
        if delta_mode == "fluctuation":
            delta = fluctuation_delta(trace, t)
        elif delta_mode == "uniform":
            delta = draw_uniform_delta(rng)
        else:
            raise ValueError(f"unknown delta mode: {delta_mode!r}")
        max_price = trace.price_at(t) + delta
        history, present = extractor.window_sample(t, max_price)
        histories.append(history)
        presents.append(present)
        labels.append(1.0 if will_be_revoked(trace, t, max_price, horizon) else 0.0)
        kept_times.append(t)
    if not labels:
        raise ValueError(
            "no usable sample times: each needs feature context before and "
            f"{horizon}s of trace after it"
        )
    return TrainingSet(
        history=np.stack(histories),
        present=np.stack(presents),
        labels=np.asarray(labels),
        times=np.asarray(kept_times),
        instance_type=trace.instance_type,
    )


def regular_sample_times(
    trace: PriceTrace, interval: float = 10 * MINUTE, horizon: float = HOUR
) -> np.ndarray:
    """Evenly spaced sample times covering the usable span of a trace."""
    extractor_start = trace.start + (59 * MINUTE + HOUR)
    last = trace.end - horizon
    if last <= extractor_start:
        raise ValueError("trace too short to cut any samples")
    return np.arange(extractor_start, last, interval)
