"""Spot price traces.

A :class:`PriceTrace` is a right-continuous step function: record
``(t_i, p_i)`` means the market price becomes ``p_i`` at ``t_i`` and
holds until the next record.  The paper's source dataset is sparse
(records only on change, at irregular intervals); the paper preprocesses
it by "interpolating values between records, making the timestamp
interval between adjacent records fixed at 1 minute" — that operation is
:meth:`PriceTrace.to_minutely`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

MINUTE = 60.0
HOUR = 3600.0


@dataclass
class PriceTrace:
    """An immutable spot-price history for one instance market.

    Attributes:
        instance_type: Market name, e.g. ``"r3.xlarge"``.
        times: Strictly increasing record timestamps (seconds).
        prices: Price in effect from the matching timestamp onward.
    """

    instance_type: str
    times: np.ndarray
    prices: np.ndarray
    region: str = field(default="us-east-1")

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.prices = np.asarray(self.prices, dtype=float)
        if self.times.ndim != 1 or self.prices.ndim != 1:
            raise ValueError("times and prices must be one-dimensional")
        if len(self.times) != len(self.prices):
            raise ValueError(
                f"length mismatch: {len(self.times)} times vs {len(self.prices)} prices"
            )
        if len(self.times) == 0:
            raise ValueError("a price trace requires at least one record")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("record timestamps must be strictly increasing")
        if np.any(self.prices <= 0):
            raise ValueError("spot prices must be positive")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def start(self) -> float:
        """Timestamp of the first record."""
        return float(self.times[0])

    @property
    def end(self) -> float:
        """Timestamp of the last record."""
        return float(self.times[-1])

    def __len__(self) -> int:
        return len(self.times)

    def _index_at(self, t: float) -> int:
        if t < self.start:
            raise ValueError(
                f"{self.instance_type}: query at {t} precedes first record {self.start}"
            )
        return int(np.searchsorted(self.times, t, side="right") - 1)

    def price_at(self, t: float) -> float:
        """Market price in effect at time ``t``."""
        return float(self.prices[self._index_at(t)])

    def price_at_many(self, ts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`price_at`."""
        ts = np.asarray(ts, dtype=float)
        if ts.size and ts.min() < self.start:
            raise ValueError(f"{self.instance_type}: query precedes first record")
        idx = np.searchsorted(self.times, ts, side="right") - 1
        return self.prices[idx]

    def last_change_time(self, t: float) -> float:
        """Timestamp at which the price in effect at ``t`` was set."""
        return float(self.times[self._index_at(t)])

    def changes_in(self, start: float, end: float) -> int:
        """Number of price-change records in the half-open window
        ``(start, end]``."""
        if end < start:
            raise ValueError(f"empty window: ({start}, {end}]")
        lo = np.searchsorted(self.times, start, side="right")
        hi = np.searchsorted(self.times, end, side="right")
        return int(hi - lo)

    def mean_price_in(self, start: float, end: float) -> float:
        """Time-weighted average price over ``[start, end]``."""
        if end <= start:
            return self.price_at(start)
        lo = self._index_at(start)
        hi = self._index_at(end)
        if lo == hi:
            return float(self.prices[lo])
        boundaries = np.concatenate(([start], self.times[lo + 1 : hi + 1], [end]))
        durations = np.diff(boundaries)
        segment_prices = self.prices[lo : hi + 1]
        return float(np.sum(durations * segment_prices) / (end - start))

    def max_price_in(self, start: float, end: float) -> float:
        """Maximum price in effect anywhere in ``[start, end]``."""
        lo = self._index_at(start)
        hi = self._index_at(end)
        return float(np.max(self.prices[lo : hi + 1]))

    def first_time_above(self, threshold: float, start: float, end: float) -> float | None:
        """Earliest time in ``[start, end]`` at which the market price
        strictly exceeds ``threshold``, or ``None`` if it never does.

        This is the revocation test: a spot VM with maximum price
        ``threshold`` launched at ``start`` is revoked at the returned
        instant (AWS revokes once market price > maximum price).
        """
        if self.price_at(start) > threshold:
            return float(start)
        lo = np.searchsorted(self.times, start, side="right")
        hi = np.searchsorted(self.times, end, side="right")
        above = np.nonzero(self.prices[lo:hi] > threshold)[0]
        if above.size == 0:
            return None
        return float(self.times[lo + int(above[0])])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> "PriceTrace":
        """Sub-trace covering ``[start, end]``, anchored with a record at
        ``start`` carrying the price then in effect."""
        if end <= start:
            raise ValueError(f"empty window: [{start}, {end}]")
        lo = self._index_at(start)
        hi = np.searchsorted(self.times, end, side="right")
        times = self.times[lo:hi].copy()
        prices = self.prices[lo:hi].copy()
        times[0] = start
        return PriceTrace(self.instance_type, times, prices, self.region)

    def to_minutely(self, start: float | None = None, end: float | None = None) -> "PriceTrace":
        """Resample onto a fixed 1-minute grid (forward-fill), the
        paper's preprocessing of the sparse Kaggle records (§IV-A1)."""
        start = self.start if start is None else float(start)
        end = self.end if end is None else float(end)
        if end <= start:
            raise ValueError(f"empty resample window: [{start}, {end}]")
        grid = np.arange(start, end + MINUTE / 2, MINUTE)
        return PriceTrace(self.instance_type, grid, self.price_at_many(grid), self.region)

    def compress(self) -> "PriceTrace":
        """Drop records that do not change the price (inverse of
        :meth:`to_minutely` up to grid alignment)."""
        keep = np.ones(len(self.times), dtype=bool)
        keep[1:] = self.prices[1:] != self.prices[:-1]
        return PriceTrace(self.instance_type, self.times[keep], self.prices[keep], self.region)

    def __repr__(self) -> str:
        return (
            f"PriceTrace({self.instance_type!r}, records={len(self)}, "
            f"span=[{self.start:.0f}, {self.end:.0f}]s)"
        )
