"""RevPred's engineered features (paper §III-B).

Each price record contributes six features:

1. current spot market price;
2. average spot market price (time-weighted over the trailing hour);
3. number of price changes in the past hour;
4. time duration since the current spot market price was set;
5. whether the time is in the workdays or not;
6. current hour of the day.

The model input is split in two parts: a history matrix of the past 59
minutes (one six-feature record per minute) feeding the LSTM branch,
and the present record — the six features plus the *maximum price* —
feeding the fully-connected branch.

Prices are normalised by the market's on-demand price, counts by the
60-record window, durations by one hour, and hour-of-day by 23, so all
features are O(1) and the numpy LSTM trains without per-market tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.trace import HOUR, MINUTE, PriceTrace
from repro.sim.clock import hour_of_day, is_workday

#: Length of the LSTM history window, in minutes (paper: "the history
#: prices across the past 59 minutes").
HISTORY_MINUTES = 59

#: Number of engineered features per record (excluding max price).
NUM_BASE_FEATURES = 6

#: Seconds of trace context needed before a sample time: 59 minutes of
#: history records, whose earliest record needs its own trailing hour.
MIN_CONTEXT_SECONDS = HISTORY_MINUTES * MINUTE + HOUR


@dataclass(frozen=True)
class PresentRecord:
    """The present-time record: six base features plus the max price."""

    features: np.ndarray  # shape (7,)
    time: float
    max_price: float


#: Memoised feature rows per extractor before the memo resets.  History
#: windows at nearby sample times share most of their minute rows (two
#: samples 5 minutes apart share 54 of 59), so inference reuses rows
#: heavily; training sweeps with arbitrary sample times would otherwise
#: grow the memo without bound.
_ROW_CACHE_MAX = 32768


class FeatureExtractor:
    """Computes normalised feature windows from a price trace."""

    def __init__(self, trace: PriceTrace, on_demand_price: float) -> None:
        if on_demand_price <= 0:
            raise ValueError(f"on-demand price must be positive: {on_demand_price}")
        self.trace = trace
        self.on_demand_price = float(on_demand_price)
        #: Feature rows keyed by exact sample time.  The row is a pure
        #: function of (trace, on-demand price, t), so a memo hit is the
        #: identical array — bitwise, not approximately.
        self._row_cache: dict[float, np.ndarray] = {}

    @property
    def earliest_sample_time(self) -> float:
        """First timestamp with enough context for a full feature window."""
        return self.trace.start + MIN_CONTEXT_SECONDS

    def base_features_at(self, t: float) -> np.ndarray:
        """The six engineered features at time ``t`` (normalised)."""
        row = self._row_cache.get(t)
        if row is None:
            trace = self.trace
            scale = self.on_demand_price
            current = trace.price_at(t) / scale
            average = trace.mean_price_in(t - HOUR, t) / scale
            changes = trace.changes_in(t - HOUR, t) / 60.0
            since_set = min(t - trace.last_change_time(t), HOUR) / HOUR
            workday = 1.0 if is_workday(t) else 0.0
            hour = hour_of_day(t) / 23.0
            row = np.array([current, average, changes, since_set, workday, hour])
            row.flags.writeable = False  # shared across memo hits
            if len(self._row_cache) >= _ROW_CACHE_MAX:
                self._row_cache.clear()
            self._row_cache[t] = row
        return row

    def history_matrix(self, t: float) -> np.ndarray:
        """Feature matrix of the past 59 minutes, shape (59, 6).

        Row 0 is the oldest minute (t - 59 min), row 58 the most recent
        full minute before ``t``.
        """
        self._check_context(t)
        minutes = t - MINUTE * np.arange(HISTORY_MINUTES, 0, -1)
        rows = [self.base_features_at(m) for m in minutes]
        return np.stack(rows)

    def present_record(self, t: float, max_price: float) -> PresentRecord:
        """The present record at ``t`` with the candidate ``max_price``."""
        if max_price <= 0:
            raise ValueError(f"max price must be positive: {max_price}")
        base = self.base_features_at(t)
        features = np.concatenate([base, [max_price / self.on_demand_price]])
        return PresentRecord(features=features, time=t, max_price=max_price)

    def window_sample(self, t: float, max_price: float) -> tuple[np.ndarray, np.ndarray]:
        """Full model input at ``t``: (history (59, 6), present (7,))."""
        history = self.history_matrix(t)
        present = self.present_record(t, max_price)
        return history, present.features

    def _check_context(self, t: float) -> None:
        if t < self.earliest_sample_time:
            raise ValueError(
                f"sample at {t} lacks context; earliest usable time is "
                f"{self.earliest_sample_time} for this trace"
            )
