"""SpotTune reproduction: cost-efficient hyper-parameter tuning on
transient cloud resources.

Reproduction of Li et al., "SpotTune: Leveraging Transient Resources
for Cost-efficient Hyper-parameter Tuning in the Public Cloud"
(ICDCS 2020).  See README.md for a tour and DESIGN.md for the system
inventory.

Quickstart::

    from repro import (
        SpotTuneConfig, SpotTuneOrchestrator, OraclePredictor,
        generate_default_dataset, get_workload, make_trials,
    )

    dataset = generate_default_dataset(seed=0, days=12)
    workload = get_workload("LoR")
    trials = make_trials(workload, seed=0)
    orchestrator = SpotTuneOrchestrator(
        workload, trials, dataset, OraclePredictor(dataset),
        SpotTuneConfig(theta=0.7), start_time=9 * 86400.0,
    )
    result = orchestrator.run()
    print(result.total_paid, result.selected)
"""

from repro.analysis.context import ExperimentContext, build_context
from repro.cloud.instance import (
    DEFAULT_INSTANCE_POOL,
    INSTANCE_CATALOG,
    InstanceType,
    get_instance_type,
)
from repro.core.accounting import JobRecord, RunResult
from repro.core.baselines import run_single_spot
from repro.core.config import SpotTuneConfig
from repro.core.orchestrator import SpotTuneOrchestrator
from repro.core.provisioner import Provisioner
from repro.earlycurve.model import StagedCurveModel
from repro.earlycurve.predictor import EarlyCurvePredictor, rank_configurations
from repro.earlycurve.slaq import SlaqCurveModel
from repro.market.dataset import SpotPriceDataset, generate_default_dataset
from repro.market.synthetic import SyntheticMarketGenerator
from repro.market.trace import PriceTrace
from repro.revpred.model import RevPredNetwork
from repro.revpred.predictor import (
    CachingPredictor,
    ConstantPredictor,
    OraclePredictor,
    PredictorBank,
)
from repro.revpred.trainer import RevPredTrainer, train_predictor_bank
from repro.sweep import Scenario, ScenarioGrid, SweepCache, SweepResult, SweepRunner
from repro.workloads.catalog import BENCHMARK_WORKLOADS, get_workload
from repro.workloads.speed import SpeedModel
from repro.workloads.trial import LiveTrainerSource, Trial, make_trials

__version__ = "1.0.0"

__all__ = [
    "ExperimentContext",
    "build_context",
    "DEFAULT_INSTANCE_POOL",
    "INSTANCE_CATALOG",
    "InstanceType",
    "get_instance_type",
    "JobRecord",
    "RunResult",
    "run_single_spot",
    "SpotTuneConfig",
    "SpotTuneOrchestrator",
    "Provisioner",
    "StagedCurveModel",
    "EarlyCurvePredictor",
    "rank_configurations",
    "SlaqCurveModel",
    "SpotPriceDataset",
    "generate_default_dataset",
    "SyntheticMarketGenerator",
    "PriceTrace",
    "RevPredNetwork",
    "CachingPredictor",
    "ConstantPredictor",
    "OraclePredictor",
    "PredictorBank",
    "RevPredTrainer",
    "train_predictor_bank",
    "Scenario",
    "ScenarioGrid",
    "SweepCache",
    "SweepResult",
    "SweepRunner",
    "BENCHMARK_WORKLOADS",
    "get_workload",
    "SpeedModel",
    "LiveTrainerSource",
    "Trial",
    "make_trials",
    "__version__",
]
