"""Experiment runners and reporting for the paper's evaluation.

One runner per figure of the paper's §IV; the benchmark suite under
``benchmarks/`` is a thin timing wrapper around these, and
EXPERIMENTS.md records their outputs against the paper's numbers.
"""

from repro.analysis.context import ExperimentContext, build_context
from repro.analysis.metrics import (
    coefficient_of_variation,
    normalized_pcr,
    relative_saving,
)
from repro.analysis.reporting import format_table

__all__ = [
    "ExperimentContext",
    "build_context",
    "coefficient_of_variation",
    "normalized_pcr",
    "relative_saving",
    "format_table",
]
