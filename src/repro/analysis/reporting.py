"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Every row must have the same number of cells as ``headers``.
    """
    if not headers:
        raise ValueError("headers must not be empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )
    columns = [[str(header)] + [str(row[i]) for row in rows] for i, header in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
