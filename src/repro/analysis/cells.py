"""Run one HPT cell through an arbitrary orchestrator implementation.

The golden byte-identity tests and ``benchmarks/bench_cell_batched.py``
need to drive the *same* cell through both the live (batched)
:class:`~repro.core.orchestrator.SpotTuneOrchestrator` and the frozen
scalar :class:`~repro.core.reference.ReferenceOrchestrator`, with an
arbitrary predictor object (usually an untrained bank — see
:func:`repro.revpred.trainer.untrained_predictor_bank`).
:meth:`ExperimentContext.spottune_run` only accepts predictor *kinds*,
so this helper mirrors its construction exactly while leaving the
orchestrator class and predictor pluggable.
"""

from __future__ import annotations

from repro.core.checkpoint_policy import policy_from_spec
from repro.core.config import SpotTuneConfig
from repro.core.orchestrator import SpotTuneOrchestrator
from repro.workloads.catalog import get_workload
from repro.workloads.trial import make_trials


def run_cell(
    context,
    workload_name: str,
    theta: float,
    predictor,
    orchestrator_cls=SpotTuneOrchestrator,
    checkpoint_policy: str = "notice",
    reschedule_after: float = 3600.0,
    refund_enabled: bool = True,
    mcnt: int = 3,
) -> dict:
    """Simulate one cell and return its order-independent summary.

    Construction matches ``ExperimentContext.spottune_run`` field for
    field, so a cell run here is byte-identical to the same cell run
    through the context (given the same predictor object semantics).
    """
    from repro.sweep.runner import summarize_run

    workload = get_workload(workload_name)
    orchestrator = orchestrator_cls(
        workload,
        make_trials(workload, seed=context.seed),
        context.dataset,
        predictor,
        SpotTuneConfig(
            theta=theta,
            seed=context.seed,
            reschedule_after=reschedule_after,
            mcnt=mcnt,
        ),
        speed_model=context.speed_model,
        start_time=context.replay_start,
        checkpoint_policy=policy_from_spec(checkpoint_policy, predictor=predictor),
    )
    orchestrator.provider.billing.refund_enabled = refund_enabled
    return summarize_run(orchestrator.run())
