"""Aggregate metrics used across the evaluation."""

from __future__ import annotations

import numpy as np


def coefficient_of_variation(samples) -> float:
    """std / mean — the paper's step-time stability measure (§IV-A5)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples")
    mean = float(np.mean(samples))
    if mean == 0.0:
        raise ValueError("mean is zero; COV undefined")
    return float(np.std(samples)) / mean


def normalized_pcr(
    jct_cost_by_approach: dict[str, tuple[float, float]],
    reference: str,
) -> dict[str, float]:
    """Performance-cost rate alpha/(JCT*cost), normalised so that the
    ``reference`` approach scores 1.0 (Fig. 7c's presentation)."""
    if reference not in jct_cost_by_approach:
        raise KeyError(f"reference {reference!r} not among approaches")
    raw = {}
    for name, (jct, cost) in jct_cost_by_approach.items():
        if jct <= 0 or cost <= 0:
            raise ValueError(f"{name}: JCT and cost must be positive")
        raw[name] = 1.0 / (jct * cost)
    scale = raw[reference]
    return {name: value / scale for name, value in raw.items()}


def relative_saving(baseline: float, improved: float) -> float:
    """Fractional saving of ``improved`` over ``baseline`` (e.g. the
    paper's "saves 41.5% compared with the cheapest")."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive: {baseline}")
    return (baseline - improved) / baseline
