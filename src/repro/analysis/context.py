"""Shared experiment context: dataset, trained predictors, split.

Building the context is the expensive part of the evaluation (training
one RevPred and one Tributary model per market), so every figure
runner takes a prebuilt :class:`ExperimentContext` and the benchmark
suite builds it once per session.  The market dataset itself is cheap
since the generator went closed-form (tens of milliseconds for the
twelve-day pool — see ``benchmarks/bench_market_generation.py``);
predictor-bank training dominates whatever remains, and only the
figures that consult a trained bank pay for it, lazily.

Mirrors the paper's protocol: twelve days of market data, models
trained on the first nine (04/26-05/04) and everything evaluated —
prediction accuracy and HPT replay alike — on the final three days
(05/05-05/07).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.market.dataset import SpotPriceDataset, generate_default_dataset
from repro.market.trace import MINUTE
from repro.revpred.model import RevPredNetwork
from repro.revpred.predictor import CachingPredictor, PredictorBank
from repro.revpred.trainer import RevPredTrainer, train_predictor_bank
from repro.revpred.tributary import TributaryNetwork
from repro.sim.clock import DAY
from repro.workloads.speed import SpeedModel

#: Days of market data and the train/test split point (paper §IV-D).
TOTAL_DAYS = 12.0
TRAIN_DAYS = 9.0


@dataclass
class ExperimentContext:
    """Everything the figure runners share."""

    seed: int = 0
    #: Model scale: compact dimensions keep the CPU-only benchmark
    #: suite fast; "paper" uses larger dimensions and longer training.
    scale: str = "small"
    #: Optional :class:`repro.sweep.banks.BankCache`: trained predictor
    #: banks load from here when a matching artifact exists and are
    #: stored here after training, so one training (by any process, in
    #: any sweep) serves every later consumer of the same fingerprint.
    bank_cache: "object | None" = None
    #: Optional directory of a market snapshot (see
    #: :mod:`repro.market.snapshot`).  When set and loadable, the
    #: dataset is memory-mapped from disk instead of regenerated —
    #: worker processes on one host then share a single page-cache copy
    #: of every trace.  Snapshots round-trip float64 exactly, so the
    #: loaded dataset (and everything computed from it) is bitwise
    #: identical to the generated one; an unreadable snapshot silently
    #: falls back to generation.
    dataset_path: "str | None" = None
    speed_model: SpeedModel = field(init=False)
    #: How many banks this context actually trained / loaded from the
    #: bank cache — the observable the exactly-once tests assert on.
    bank_trainings: int = field(init=False, default=0)
    bank_loads: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.scale not in ("small", "paper"):
            raise ValueError(f"scale must be 'small' or 'paper': {self.scale}")
        self.speed_model = SpeedModel(seed=self.seed)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    @cached_property
    def dataset(self) -> SpotPriceDataset:
        if self.dataset_path is not None:
            from repro.market.snapshot import load_market_snapshot

            snapshot = load_market_snapshot(self.dataset_path)
            if snapshot is not None:
                return snapshot
        return generate_default_dataset(seed=self.seed, days=TOTAL_DAYS)

    @cached_property
    def split(self) -> tuple[SpotPriceDataset, SpotPriceDataset]:
        return self.dataset.split(self.split_time)

    @property
    def train_dataset(self) -> SpotPriceDataset:
        return self.split[0]

    @property
    def test_dataset(self) -> SpotPriceDataset:
        return self.split[1]

    @property
    def split_time(self) -> float:
        return TRAIN_DAYS * DAY

    @property
    def replay_start(self) -> float:
        """Where HPT replays begin: inside the test window, with enough
        context behind it for feature extraction."""
        return self.split_time + 2 * 3600.0

    # ------------------------------------------------------------------
    # Trained predictors
    # ------------------------------------------------------------------
    def _trainer(self) -> RevPredTrainer:
        if self.scale == "paper":
            return RevPredTrainer(lr=0.003, epochs=25, batch_size=64, seed=self.seed)
        return RevPredTrainer(lr=0.005, epochs=12, batch_size=64, seed=self.seed)

    def _dims(self) -> dict:
        if self.scale == "paper":
            return {"lstm_hidden": 64, "lstm_layers": 3, "fc_hidden": 64}
        return {"lstm_hidden": 24, "lstm_layers": 3, "fc_hidden": 24}

    def _sample_interval(self) -> float:
        return 5 * MINUTE if self.scale == "paper" else 10 * MINUTE

    _BANK_DELTA_MODES = {"revpred": "fluctuation", "tributary": "uniform"}

    def _bank_model_factory(self, kind: str):
        dims = self._dims()
        if kind == "revpred":
            return lambda seed: RevPredNetwork(rng=np.random.default_rng(seed), **dims)
        if kind == "tributary":
            return lambda seed: TributaryNetwork(
                rng=np.random.default_rng(seed),
                lstm_hidden=dims["lstm_hidden"],
                lstm_layers=dims["lstm_layers"],
            )
        raise ValueError(f"unknown bank kind: {kind!r}")

    def _bank_spec(self, kind: str) -> dict:
        """Everything the trained weights of one bank depend on.

        This dict is the bank-cache fingerprint payload: two contexts
        share a cached bank exactly when retraining would reproduce the
        identical artifact — same seed/scale, same data window, same
        model dimensions, same trainer hyper-parameters and sampling.
        """
        from repro.sweep.scenario import SCHEMA_VERSION

        trainer = self._trainer()
        return {
            "kind": kind,
            "seed": self.seed,
            "scale": self.scale,
            # The sweep schema version is bumped whenever generated
            # market data changes (it was, for the vectorised
            # generator), and a bank is only as valid as the data it
            # trained on — so data-invalidating bumps retire cached
            # banks together with cached cells.
            "cell_schema": SCHEMA_VERSION,
            "days": TOTAL_DAYS,
            "train_days": TRAIN_DAYS,
            "dims": self._dims(),
            "delta_mode": self._BANK_DELTA_MODES[kind],
            "sample_interval": self._sample_interval(),
            "trainer": {
                "lr": trainer.lr,
                "epochs": trainer.epochs,
                "batch_size": trainer.batch_size,
                "clip_norm": trainer.clip_norm,
                "seed": trainer.seed,
            },
        }

    def _train_bank(self, kind: str) -> PredictorBank:
        from repro.sweep.banks import notify_trained

        bank = train_predictor_bank(
            self.train_dataset,
            inference_dataset=self.dataset,
            model_factory=self._bank_model_factory(kind),
            delta_mode=self._BANK_DELTA_MODES[kind],
            sample_interval=self._sample_interval(),
            trainer=self._trainer(),
            seed=self.seed,
        )
        self.bank_trainings += 1
        notify_trained(self, kind)
        return bank

    def _bank(self, kind: str) -> PredictorBank:
        """Load the bank from the cache, or train (and store) it.

        The per-fingerprint lock makes training exactly-once across
        concurrent workers: a sibling racing for the same bank blocks
        until the winner stores it, then loads the artifact instead of
        retraining.
        """
        if self.bank_cache is None:
            return self._train_bank(kind)
        spec = self._bank_spec(kind)
        factory = self._bank_model_factory(kind)
        with self.bank_cache.lock(spec):
            bank = self.bank_cache.load(spec, factory, self.dataset)
            if bank is not None:
                self.bank_loads += 1
                return bank
            bank = self._train_bank(kind)
            self.bank_cache.store(
                spec,
                bank,
                model_seeds={
                    name: self.seed + index
                    for index, name in enumerate(self.train_dataset.instance_types)
                },
            )
        return bank

    @cached_property
    def revpred_bank(self) -> PredictorBank:
        """RevPred models (Algorithm 2 labels, two-branch network)."""
        return self._bank("revpred")

    @cached_property
    def tributary_bank(self) -> PredictorBank:
        """Tributary Predict baseline (uniform deltas, single stream)."""
        return self._bank("tributary")

    def cached_revpred(self) -> CachingPredictor:
        """Fresh memoising view of the RevPred bank for one run."""
        return CachingPredictor(self.revpred_bank)

    def cached_tributary(self) -> CachingPredictor:
        return CachingPredictor(self.tributary_bank)

    # ------------------------------------------------------------------
    # Shared run cache — several figures consume the same runs
    # (Fig. 7's theta=0.7 rows are Fig. 9's and Fig. 12's inputs), so
    # runs are memoised by (workload, theta, predictor kind).
    # ------------------------------------------------------------------
    @cached_property
    def _run_cache(self) -> dict:
        return {}

    def spottune_run(
        self,
        workload_name: str,
        theta: float,
        predictor_kind: str = "revpred",
        checkpoint_policy: str = "notice",
        reschedule_after: float = 3600.0,
        refund_enabled: bool = True,
        mcnt: int = 3,
    ):
        """Memoised SpotTune run for one (workload, theta, predictor,
        checkpoint policy, ablation knobs, mcnt) cell."""
        from repro.core.checkpoint_policy import policy_from_spec
        from repro.core.config import SpotTuneConfig
        from repro.core.orchestrator import SpotTuneOrchestrator
        from repro.workloads.catalog import get_workload
        from repro.workloads.trial import make_trials

        from repro.revpred.predictor import ConstantPredictor, OraclePredictor

        # 6 decimals matches Scenario's theta normalisation — distinct
        # sweep cells must never silently share one memoised run.
        key = (
            "spottune",
            workload_name,
            round(theta, 6),
            predictor_kind,
            checkpoint_policy,
            reschedule_after,
            refund_enabled,
            mcnt,
        )
        if key not in self._run_cache:
            if predictor_kind == "revpred":
                predictor = self.cached_revpred()
            elif predictor_kind == "tributary":
                predictor = self.cached_tributary()
            elif predictor_kind == "oracle":
                predictor = OraclePredictor(self.dataset)
            elif predictor_kind == "constant":
                predictor = ConstantPredictor(0.0)
            else:
                raise ValueError(f"unknown predictor kind: {predictor_kind!r}")
            workload = get_workload(workload_name)
            orchestrator = SpotTuneOrchestrator(
                workload,
                make_trials(workload, seed=self.seed),
                self.dataset,
                predictor,
                SpotTuneConfig(
                    theta=theta,
                    seed=self.seed,
                    reschedule_after=reschedule_after,
                    mcnt=mcnt,
                ),
                speed_model=self.speed_model,
                start_time=self.replay_start,
                checkpoint_policy=policy_from_spec(checkpoint_policy, predictor=predictor),
            )
            orchestrator.provider.billing.refund_enabled = refund_enabled
            self._run_cache[key] = orchestrator.run()
        return self._run_cache[key]

    def baseline_run(self, workload_name: str, instance_name: str, mcnt: int = 3):
        """Memoised Single-Spot baseline run."""
        from repro.core.baselines import run_single_spot
        from repro.workloads.catalog import get_workload
        from repro.workloads.trial import make_trials

        key = ("baseline", workload_name, instance_name, mcnt)
        if key not in self._run_cache:
            workload = get_workload(workload_name)
            self._run_cache[key] = run_single_spot(
                workload,
                make_trials(workload, seed=self.seed),
                self.dataset,
                instance_name,
                speed_model=self.speed_model,
                start_time=self.replay_start,
                mcnt=mcnt,
            )
        return self._run_cache[key]


def build_context(
    seed: int = 0, scale: str = "small", bank_cache=None, dataset_path=None
) -> ExperimentContext:
    """Convenience constructor used by benchmarks and examples."""
    return ExperimentContext(
        seed=seed,
        scale=scale,
        bank_cache=bank_cache,
        dataset_path=str(dataset_path) if dataset_path is not None else None,
    )
