"""One runner per figure of the paper's evaluation (§IV).

Each function takes the shared :class:`ExperimentContext` and returns
a plain-data result object with a ``rows()`` method for tabular
printing, so the benchmark harness can both time the experiment and
regenerate the figure's series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.metrics import coefficient_of_variation, normalized_pcr, relative_saving
from repro.cloud.instance import DEFAULT_INSTANCE_POOL, get_instance_type
from repro.cloud.storage import CheckpointThroughputModel
from repro.core.baselines import CHEAPEST_INSTANCE, FASTEST_INSTANCE
from repro.earlycurve.model import StagedCurveModel
from repro.earlycurve.slaq import SlaqCurveModel
from repro.market.labeling import build_training_set
from repro.market.trace import HOUR, MINUTE
from repro.mlalgos.datasets import make_binary_classification
from repro.mlalgos.logistic_regression import LogisticRegressionTrainer
from repro.revpred.evaluate import PredictionMetrics, evaluate_probabilities
from repro.revpred.logistic import LogisticBaseline
from repro.revpred.trainer import RevPredTrainer
from repro.sim.clock import DAY
from repro.sim.rng import RngStream
from repro.sweep.runner import SweepResult, SweepRunner
from repro.sweep.scenario import ScenarioGrid
from repro.workloads.catalog import BENCHMARK_WORKLOADS, get_workload
from repro.workloads.curves import make_curve

APPROACHES = (
    "SpotTune(theta=0.7)",
    "SpotTune(theta=1.0)",
    "Single-Spot Tune (Cheapest)",
    "Single-Spot Tune (Fastest)",
)


def _sweep(
    context: ExperimentContext, spec: dict, runner: SweepRunner | None = None
) -> SweepResult:
    """Execute a declarative grid for one figure.

    The default runner executes in-process against the shared
    experiment context, so a figure's cells land in the context's
    memoised run cache exactly as the hand-rolled loops did (Fig. 7's
    theta=0.7 rows stay Fig. 9's and Fig. 12's inputs).  Callers can
    pass a pooled or caching :class:`SweepRunner` instead.
    """
    grid = ScenarioGrid.from_spec({"seed": context.seed, "scale": context.scale, **spec})
    runner = runner if runner is not None else SweepRunner(context=context)
    return runner.run(grid)


# ----------------------------------------------------------------------
# Fig. 1 — spot price trace example
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    instance_type: str
    times: np.ndarray
    prices: np.ndarray
    on_demand_price: float

    def rows(self) -> list[list[str]]:
        return [
            ["records", str(len(self.times))],
            ["span (days)", f"{(self.times[-1] - self.times[0]) / DAY:.1f}"],
            ["median spot ($/h)", f"{np.median(self.prices):.4f}"],
            ["max spot ($/h)", f"{self.prices.max():.4f}"],
            ["on-demand ($/h)", f"{self.on_demand_price:.4f}"],
            ["spikes above on-demand", str(int(np.sum(self.prices > self.on_demand_price)))],
        ]


def fig1_price_trace(context: ExperimentContext, instance_name: str = "r3.xlarge") -> Fig1Result:
    """The Fig. 1 series: 11 days of one volatile market vs on-demand."""
    trace = context.dataset[instance_name]
    end = min(trace.end, trace.start + 11 * DAY)
    window = trace.window(trace.start, end)
    return Fig1Result(
        instance_type=instance_name,
        times=window.times,
        prices=window.prices,
        on_demand_price=get_instance_type(instance_name).on_demand_price,
    )


# ----------------------------------------------------------------------
# Fig. 5 — validation loss curve examples
# ----------------------------------------------------------------------
@dataclass
class Fig5Result:
    lor_curves: dict[str, tuple[list[int], list[float]]]
    resnet_curve: np.ndarray
    resnet_num_stages: int

    def rows(self) -> list[list[str]]:
        rows = []
        for label, (steps, losses) in self.lor_curves.items():
            rows.append([f"LoR {label}", f"start={losses[0]:.3f}", f"end={losses[-1]:.3f}"])
        rows.append(
            [
                "ResNet staged curve",
                f"stages={self.resnet_num_stages}",
                f"end={self.resnet_curve[-1]:.3f}",
            ]
        )
        return rows


def fig5_loss_curves(context: ExperimentContext) -> Fig5Result:
    """Fig. 5a: real LoR training with three HP settings; Fig. 5b: a
    staged ResNet-style validation curve."""
    from repro.earlycurve.stages import detect_stages

    data = make_binary_classification(n_samples=1200, n_features=30, seed=context.seed)
    settings = {
        "bs:128 lr:1e-2 dr:1.0 ds:2000": dict(batch_size=128, lr=1e-2, decay_rate=1.0, decay_steps=2000),
        "bs:128 lr:1e-3 dr:0.95 ds:1000": dict(batch_size=128, lr=1e-3, decay_rate=0.95, decay_steps=1000),
        "bs:64 lr:1e-2 dr:0.95 ds:2000": dict(batch_size=64, lr=1e-2, decay_rate=0.95, decay_steps=2000),
    }
    lor_curves = {}
    for label, kwargs in settings.items():
        trainer = LogisticRegressionTrainer(data, seed=context.seed, **kwargs)
        steps, losses = trainer.run(400, validate_every=10)
        lor_curves[label] = (steps, losses)

    resnet = get_workload("ResNet")
    config = {"bs": 32, "version": 2, "depth": 29, "de": 40}
    curve = make_curve(resnet, config, seed=context.seed)
    stages = detect_stages(curve.values)
    return Fig5Result(
        lor_curves=lor_curves, resnet_curve=curve.values, resnet_num_stages=len(stages)
    )


# ----------------------------------------------------------------------
# Fig. 6 — performance profiling
# ----------------------------------------------------------------------
@dataclass
class Fig6Result:
    seconds_per_step: dict[str, float]
    step_time_cov: float

    def rows(self) -> list[list[str]]:
        ordered = sorted(DEFAULT_INSTANCE_POOL, key=lambda i: i.on_demand_price)
        rows = [
            [instance.name, f"{self.seconds_per_step[instance.name]:.2f} s/step"]
            for instance in ordered
        ]
        rows.append(["step-time COV", f"{self.step_time_cov:.4f}"])
        return rows


def fig6_performance_profile(context: ExperimentContext) -> Fig6Result:
    """ResNet speed across the pool, plus the COV<0.1 stability check."""
    workload = get_workload("ResNet")
    config = workload.configurations()[0]
    profile = context.speed_model.profile(list(DEFAULT_INSTANCE_POOL), workload, config)
    instance = get_instance_type("r3.xlarge")
    samples = [
        context.speed_model.sample_segment_speed(instance, workload, config, i)
        for i in range(200)
    ]
    return Fig6Result(
        seconds_per_step=profile, step_time_cov=coefficient_of_variation(samples)
    )


# ----------------------------------------------------------------------
# Fig. 7 — overall cost / JCT / PCR
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    cost: dict[str, dict[str, float]]  # workload -> approach -> $
    jct_hours: dict[str, dict[str, float]]
    pcr: dict[str, dict[str, float]]  # normalised, SpotTune(0.7) = 1

    def rows(self) -> list[list[str]]:
        rows = []
        for workload in self.cost:
            for approach in APPROACHES:
                rows.append(
                    [
                        workload,
                        approach,
                        f"{self.cost[workload][approach]:.2f}",
                        f"{self.jct_hours[workload][approach]:.2f}",
                        f"{self.pcr[workload][approach]:.3f}",
                    ]
                )
        return rows

    def summary(self) -> dict[str, float]:
        """The paper's headline aggregates."""
        def mean_saving(reference: str, target: str) -> float:
            return float(
                np.mean(
                    [
                        relative_saving(self.cost[w][reference], self.cost[w][target])
                        for w in self.cost
                    ]
                )
            )

        pcr_10_vs_cheap = np.mean(
            [self.pcr[w]["SpotTune(theta=1.0)"] / self.pcr[w]["Single-Spot Tune (Cheapest)"] for w in self.pcr]
        )
        pcr_10_vs_fast = np.mean(
            [self.pcr[w]["SpotTune(theta=1.0)"] / self.pcr[w]["Single-Spot Tune (Fastest)"] for w in self.pcr]
        )
        pcr_07_vs_cheap = np.mean(
            [1.0 / self.pcr[w]["Single-Spot Tune (Cheapest)"] for w in self.pcr]
        )
        pcr_07_vs_fast = np.mean(
            [1.0 / self.pcr[w]["Single-Spot Tune (Fastest)"] for w in self.pcr]
        )
        return {
            "saving_theta10_vs_cheapest": mean_saving(
                "Single-Spot Tune (Cheapest)", "SpotTune(theta=1.0)"
            ),
            "saving_theta10_vs_fastest": mean_saving(
                "Single-Spot Tune (Fastest)", "SpotTune(theta=1.0)"
            ),
            "saving_theta07_vs_cheapest": mean_saving(
                "Single-Spot Tune (Cheapest)", "SpotTune(theta=0.7)"
            ),
            "saving_theta07_vs_fastest": mean_saving(
                "Single-Spot Tune (Fastest)", "SpotTune(theta=0.7)"
            ),
            "saving_theta07_vs_theta10": mean_saving(
                "SpotTune(theta=1.0)", "SpotTune(theta=0.7)"
            ),
            "pcr_theta10_vs_cheapest": float(pcr_10_vs_cheap),
            "pcr_theta10_vs_fastest": float(pcr_10_vs_fast),
            "pcr_theta07_vs_cheapest": float(pcr_07_vs_cheap),
            "pcr_theta07_vs_fastest": float(pcr_07_vs_fast),
        }


def fig7_cost_jct_pcr(
    context: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    predictor_kind: str = "revpred",
    runner: SweepRunner | None = None,
) -> Fig7Result:
    """Cost, JCT, and normalised PCR for the four approaches."""
    workloads = workloads if workloads is not None else tuple(BENCHMARK_WORKLOADS)
    sweep = _sweep(
        context,
        {
            "grids": [
                {
                    "approach": "spottune",
                    "workload": list(workloads),
                    "theta": [0.7, 1.0],
                    "predictor": predictor_kind,
                },
                {
                    "approach": "single_spot",
                    "workload": list(workloads),
                    "instance": [CHEAPEST_INSTANCE, FASTEST_INSTANCE],
                },
            ]
        },
        runner,
    )
    cost: dict[str, dict[str, float]] = {}
    jct: dict[str, dict[str, float]] = {}
    pcr: dict[str, dict[str, float]] = {}
    for name in workloads:
        summaries = {
            "SpotTune(theta=0.7)": sweep.one(
                workload=name, approach="spottune", theta=0.7
            ).summary,
            "SpotTune(theta=1.0)": sweep.one(
                workload=name, approach="spottune", theta=1.0
            ).summary,
            "Single-Spot Tune (Cheapest)": sweep.one(
                workload=name, instance=CHEAPEST_INSTANCE
            ).summary,
            "Single-Spot Tune (Fastest)": sweep.one(
                workload=name, instance=FASTEST_INSTANCE
            ).summary,
        }
        cost[name] = {a: s["cost"] for a, s in summaries.items()}
        jct[name] = {a: s["jct_hours"] for a, s in summaries.items()}
        pcr[name] = normalized_pcr(
            {a: (s["jct_hours"], s["cost"]) for a, s in summaries.items()},
            reference="SpotTune(theta=0.7)",
        )
    return Fig7Result(cost=cost, jct_hours=jct, pcr=pcr)


# ----------------------------------------------------------------------
# Fig. 8 — sensitivity against theta
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    thetas: tuple[float, ...]
    cost: dict[str, list[float]]  # workload -> cost per theta
    jct_hours: dict[str, list[float]]
    top1_accuracy: list[float]  # averaged over workloads, per theta
    top3_accuracy: list[float]

    def rows(self) -> list[list[str]]:
        rows = []
        for index, theta in enumerate(self.thetas):
            mean_cost = np.mean([self.cost[w][index] for w in self.cost])
            mean_jct = np.mean([self.jct_hours[w][index] for w in self.jct_hours])
            rows.append(
                [
                    f"{theta:.1f}",
                    f"{mean_cost:.2f}",
                    f"{mean_jct:.2f}",
                    f"{self.top1_accuracy[index]:.2f}",
                    f"{self.top3_accuracy[index]:.2f}",
                ]
            )
        return rows


def fig8_theta_sensitivity(
    context: ExperimentContext,
    thetas: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    workloads: tuple[str, ...] | None = None,
    predictor_kind: str = "revpred",
    runner: SweepRunner | None = None,
) -> Fig8Result:
    """Cost, JCT, and selection accuracy as theta sweeps 0.1..1.0."""
    workloads = workloads if workloads is not None else tuple(BENCHMARK_WORKLOADS)
    sweep = _sweep(
        context,
        {
            "approach": "spottune",
            "workload": list(workloads),
            "theta": list(thetas),
            "predictor": predictor_kind,
        },
        runner,
    )
    cost = {name: [] for name in workloads}
    jct = {name: [] for name in workloads}
    top1, top3 = [], []
    for theta in thetas:
        hits1, hits3 = [], []
        for name in workloads:
            summary = sweep.one(workload=name, theta=round(float(theta), 6)).summary
            cost[name].append(summary["cost"])
            jct[name].append(summary["jct_hours"])
            hits1.append(summary["top1_hit"])
            hits3.append(summary["top3_hit"])
        top1.append(float(np.mean(hits1)))
        top3.append(float(np.mean(hits3)))
    return Fig8Result(
        thetas=thetas, cost=cost, jct_hours=jct, top1_accuracy=top1, top3_accuracy=top3
    )


# ----------------------------------------------------------------------
# Fig. 9 — refunded (free) resources contribution
# ----------------------------------------------------------------------
@dataclass
class Fig9Result:
    free_step_fraction: dict[str, float]
    refund_fraction: dict[str, float]

    def rows(self) -> list[list[str]]:
        return [
            [
                name,
                f"{self.free_step_fraction[name]:.1%}",
                f"{self.refund_fraction[name]:.1%}",
            ]
            for name in self.free_step_fraction
        ]

    @property
    def mean_free_fraction(self) -> float:
        return float(np.mean(list(self.free_step_fraction.values())))


def fig9_refund_contribution(
    context: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    predictor_kind: str = "revpred",
    runner: SweepRunner | None = None,
) -> Fig9Result:
    """Free vs charged steps and refund value share at theta = 0.7."""
    workloads = workloads if workloads is not None else tuple(BENCHMARK_WORKLOADS)
    sweep = _sweep(
        context,
        {
            "approach": "spottune",
            "workload": list(workloads),
            "theta": 0.7,
            "predictor": predictor_kind,
        },
        runner,
    )
    free, refund = {}, {}
    for name in workloads:
        summary = sweep.one(workload=name).summary
        free[name] = summary["free_step_fraction"]
        refund[name] = summary["refund_fraction"]
    return Fig9Result(free_step_fraction=free, refund_fraction=refund)


# ----------------------------------------------------------------------
# Fig. 10a/b — RevPred vs baselines, prediction quality
# ----------------------------------------------------------------------
@dataclass
class Fig10abResult:
    metrics: dict[str, PredictionMetrics]  # model -> aggregated metrics

    def rows(self) -> list[list[str]]:
        return [
            [name, f"{m.accuracy:.3f}", f"{m.f1:.3f}", str(m.total)]
            for name, m in self.metrics.items()
        ]

    def improvement_over_tributary(self) -> dict[str, float]:
        revpred = self.metrics["RevPred"]
        tributary = self.metrics["Tributary Predict"]
        return {
            "accuracy_gain": relative_saving(1.0, 1.0)
            if tributary.accuracy == 0
            else (revpred.accuracy - tributary.accuracy) / tributary.accuracy,
            "f1_gain": float("inf")
            if tributary.f1 == 0
            else (revpred.f1 - tributary.f1) / tributary.f1,
        }


def fig10ab_revpred_accuracy(context: ExperimentContext) -> Fig10abResult:
    """Accuracy/F1 of RevPred, Tributary Predict, and logistic
    regression on the held-out test days, pooled over all markets.

    Test samples use Algorithm 2 (border) max prices: prices far above
    the market are trivially safe, so the decision-relevant — and, per
    the class balance the paper's ~0.6 accuracies imply, the paper's —
    test distribution sits at the revocation border.
    """
    interval = 15 * MINUTE
    confusion = {
        "RevPred": np.zeros(4, dtype=int),
        "Tributary Predict": np.zeros(4, dtype=int),
        "Logistic Regression": np.zeros(4, dtype=int),
    }
    for name in context.dataset.instance_types:
        instance = get_instance_type(name)
        trace = context.dataset[name]
        test_start = context.split_time + 2 * HOUR
        test_times = np.arange(test_start, trace.end - HOUR, interval)
        test_set = build_training_set(
            trace,
            instance.on_demand_price,
            test_times,
            RngStream(context.seed, f"fig10/{name}"),
            delta_mode="fluctuation",
        )

        # Logistic baseline is trained per market on the training days.
        train_trace = context.train_dataset[name]
        from repro.market.labeling import regular_sample_times

        train_set = build_training_set(
            train_trace,
            instance.on_demand_price,
            regular_sample_times(train_trace, interval=context._sample_interval()),
            RngStream(context.seed, f"fig10-train/{name}"),
            delta_mode="uniform",
        )
        logistic = LogisticBaseline(rng=np.random.default_rng(context.seed))
        RevPredTrainer(lr=0.05, epochs=20, seed=context.seed).train(logistic, train_set)

        predictions = {
            "RevPred": context.revpred_bank.predictors[name],
            "Tributary Predict": context.tributary_bank.predictors[name],
        }
        for model_name, market_predictor in predictions.items():
            raw = market_predictor.model.predict_proba(test_set.history, test_set.present)
            calibrated = market_predictor.correction.apply(raw)
            metrics = evaluate_probabilities(calibrated, test_set.labels)
            confusion[model_name] += np.array(
                [
                    metrics.true_positives,
                    metrics.false_positives,
                    metrics.true_negatives,
                    metrics.false_negatives,
                ]
            )
        raw = logistic.predict_proba(test_set.history, test_set.present)
        metrics = evaluate_probabilities(raw, test_set.labels)
        confusion["Logistic Regression"] += np.array(
            [
                metrics.true_positives,
                metrics.false_positives,
                metrics.true_negatives,
                metrics.false_negatives,
            ]
        )
    return Fig10abResult(
        metrics={
            name: PredictionMetrics(*counts.tolist()) for name, counts in confusion.items()
        }
    )


# ----------------------------------------------------------------------
# Fig. 10c — predictor effect on SpotTune cost / PCR
# ----------------------------------------------------------------------
@dataclass
class Fig10cResult:
    cost: dict[str, dict[str, float]]  # workload -> predictor -> $
    pcr: dict[str, dict[str, float]]  # normalised, RevPred = 1

    def rows(self) -> list[list[str]]:
        rows = []
        for workload in self.cost:
            for predictor in ("RevPred", "Tributary Predict"):
                rows.append(
                    [
                        workload,
                        predictor,
                        f"{self.cost[workload][predictor]:.2f}",
                        f"{self.pcr[workload][predictor]:.3f}",
                    ]
                )
        return rows

    def mean_cost_saving(self) -> float:
        """Average cost reduction of RevPred over Tributary."""
        savings = [
            relative_saving(self.cost[w]["Tributary Predict"], self.cost[w]["RevPred"])
            for w in self.cost
        ]
        return float(np.mean(savings))


def fig10c_predictor_effect(
    context: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    runner: SweepRunner | None = None,
) -> Fig10cResult:
    """SpotTune(0.7) with RevPred vs with the Tributary predictor."""
    workloads = workloads if workloads is not None else tuple(BENCHMARK_WORKLOADS)
    sweep = _sweep(
        context,
        {
            "approach": "spottune",
            "workload": list(workloads),
            "theta": 0.7,
            "predictor": ["revpred", "tributary"],
        },
        runner,
    )
    cost, pcr = {}, {}
    for name in workloads:
        revpred = sweep.one(workload=name, predictor="revpred").summary
        tributary = sweep.one(workload=name, predictor="tributary").summary
        cost[name] = {
            "RevPred": revpred["cost"],
            "Tributary Predict": tributary["cost"],
        }
        pcr[name] = normalized_pcr(
            {
                "RevPred": (revpred["jct_hours"], revpred["cost"]),
                "Tributary Predict": (tributary["jct_hours"], tributary["cost"]),
            },
            reference="RevPred",
        )
    return Fig10cResult(cost=cost, pcr=pcr)


# ----------------------------------------------------------------------
# Fig. 11 — EarlyCurve vs SLAQ
# ----------------------------------------------------------------------
@dataclass
class Fig11Result:
    earlycurve_errors: list[float]  # per ResNet configuration
    slaq_errors: list[float]
    example_observed: np.ndarray
    example_truth: float
    example_earlycurve: float
    example_slaq: float

    def rows(self) -> list[list[str]]:
        rows = [
            [
                f"config {i}",
                f"{ec:.4f}",
                f"{sl:.4f}",
            ]
            for i, (ec, sl) in enumerate(zip(self.earlycurve_errors, self.slaq_errors))
        ]
        rows.append(
            [
                "mean",
                f"{np.mean(self.earlycurve_errors):.4f}",
                f"{np.mean(self.slaq_errors):.4f}",
            ]
        )
        return rows

    @property
    def mean_error_ratio(self) -> float:
        return float(np.mean(self.slaq_errors) / max(np.mean(self.earlycurve_errors), 1e-12))


def fig11_earlycurve_vs_slaq(
    context: ExperimentContext, theta: float = 0.7
) -> Fig11Result:
    """Final-metric prediction error of the two fitters on all 16
    ResNet configurations, observing the first theta of each curve."""
    workload = get_workload("ResNet")
    staged_model = StagedCurveModel()
    slaq_model = SlaqCurveModel()
    earlycurve_errors, slaq_errors = [], []
    example = None
    for config in workload.configurations():
        curve = make_curve(workload, config, seed=context.seed)
        observed = curve.values[: int(theta * workload.max_trial_steps)]
        target_index = workload.max_trial_steps - 1
        truth = curve.final_value
        ec_prediction = staged_model.fit_predict(observed, target_index)
        slaq_prediction = slaq_model.fit_predict(observed, target_index)
        earlycurve_errors.append(abs(ec_prediction - truth))
        slaq_errors.append(abs(slaq_prediction - truth))
        if example is None and config["de"] == 40:
            example = (observed, truth, ec_prediction, slaq_prediction)
    assert example is not None
    return Fig11Result(
        earlycurve_errors=earlycurve_errors,
        slaq_errors=slaq_errors,
        example_observed=example[0],
        example_truth=example[1],
        example_earlycurve=example[2],
        example_slaq=example[3],
    )


# ----------------------------------------------------------------------
# Fig. 12 — checkpoint-restore overhead
# ----------------------------------------------------------------------
@dataclass
class Fig12Result:
    overhead_fraction: dict[str, float]
    throughput_mb_s: dict[str, float]
    max_model_gb: dict[str, float]

    def rows(self) -> list[list[str]]:
        rows = [
            [name, f"{fraction:.2%}"] for name, fraction in self.overhead_fraction.items()
        ]
        for instance_name in self.throughput_mb_s:
            rows.append(
                [
                    f"{instance_name} checkpoint",
                    f"{self.throughput_mb_s[instance_name]:.2f} MB/s, "
                    f"max {self.max_model_gb[instance_name]:.2f} GB",
                ]
            )
        return rows

    @property
    def mean_overhead(self) -> float:
        return float(np.mean(list(self.overhead_fraction.values())))


def fig12_checkpoint_overhead(
    context: ExperimentContext,
    workloads: tuple[str, ...] | None = None,
    predictor_kind: str = "revpred",
    runner: SweepRunner | None = None,
) -> Fig12Result:
    """Checkpoint-restore share of wall time per workload, plus the
    §IV-F throughput calibration points."""
    workloads = workloads if workloads is not None else tuple(BENCHMARK_WORKLOADS)
    sweep = _sweep(
        context,
        {
            "approach": "spottune",
            "workload": list(workloads),
            "theta": 0.7,
            "predictor": predictor_kind,
        },
        runner,
    )
    overhead = {}
    for name in workloads:
        overhead[name] = sweep.one(workload=name).summary["overhead_fraction"]
    model = CheckpointThroughputModel()
    throughput, max_model = {}, {}
    for instance_name in ("t2.micro", "m4.4xlarge"):
        instance = get_instance_type(instance_name)
        throughput[instance_name] = model.speed_mb_s(instance)
        max_model[instance_name] = model.max_model_size_mb(instance) / 1024.0
    return Fig12Result(
        overhead_fraction=overhead, throughput_mb_s=throughput, max_model_gb=max_model
    )
