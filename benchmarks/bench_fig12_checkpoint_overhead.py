"""Fig. 12 and §IV-F — checkpoint-restore overhead.

Measures the share of SpotTune's wall time spent checkpointing to and
restoring from the object store (paper: under 10% on average), and
verifies the CPU-bound throughput model against the paper's measured
anchors: 62.83 MB/s / 7.36 GB max model on t2.micro and 134.22 MB/s /
15.73 GB on m4.4xlarge.
"""

import pytest

from repro.analysis.experiments import fig12_checkpoint_overhead
from repro.analysis.reporting import format_table


def test_fig12_checkpoint_overhead(benchmark, context):
    result = benchmark.pedantic(
        fig12_checkpoint_overhead, args=(context,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["item", "value"],
            result.rows(),
            "Fig. 12 — checkpoint-restore overhead (theta = 0.7)",
        )
    )
    print(f"\nmean overhead: {result.mean_overhead:.2%} (paper: <10% on average)")

    # Every workload keeps checkpoint-restore below 10% of wall time.
    for workload, fraction in result.overhead_fraction.items():
        assert fraction < 0.10, (workload, fraction)
    # §IV-F calibration anchors reproduce exactly.
    assert result.throughput_mb_s["t2.micro"] == pytest.approx(62.83)
    assert result.throughput_mb_s["m4.4xlarge"] == pytest.approx(134.22)
    assert result.max_model_gb["t2.micro"] == pytest.approx(7.36, abs=0.01)
    assert result.max_model_gb["m4.4xlarge"] == pytest.approx(15.73, abs=0.01)
