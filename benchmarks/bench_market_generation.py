"""Market-generation speedup: vectorised generator vs the loop.

Context construction is dominated by generating every market's price
history, and before vectorisation its per-minute Python loop (~17k
iterations per market) capped the sweep pool's speedup for small
cells.  This benchmark times the full default dataset build — the six
Table III markets plus t2.micro and one default-profile (turbulent)
market, twelve days each — through both implementations and asserts
the ISSUE 3 acceptance floor: the vectorised path is at least 10x
faster.

Run with ``pytest benchmarks/bench_market_generation.py -s``.
"""

import time

import numpy as np

from repro.cloud.instance import INSTANCE_CATALOG, InstanceType
from repro.market.reference import generate_loop_reference
from repro.market.synthetic import SyntheticMarketGenerator

#: Eight 12-day markets: the full catalog plus one default-profile
#: market exercising the calm/turbulent regime chain.
BENCH_INSTANCES = tuple(INSTANCE_CATALOG.values()) + (
    InstanceType("c5.large", 2, 4.0, 0.085),
)
DAYS = 12.0


def _build_vectorised(seed: int):
    generator = SyntheticMarketGenerator(seed=seed)
    return [generator.generate(instance, days=DAYS) for instance in BENCH_INSTANCES]


def _build_loop(seed: int):
    return [
        generate_loop_reference(instance, days=DAYS, seed=seed)
        for instance in BENCH_INSTANCES
    ]


def test_vectorised_context_build_is_10x_faster(benchmark):
    loop_started = time.perf_counter()
    loop_traces = _build_loop(seed=0)
    loop_elapsed = time.perf_counter() - loop_started

    vectorised_traces = benchmark.pedantic(
        _build_vectorised, args=(0,), rounds=3, iterations=1, warmup_rounds=1
    )
    vectorised_elapsed = benchmark.stats.stats.min

    for fast, slow in zip(vectorised_traces, loop_traces):
        np.testing.assert_array_equal(fast.times, slow.times)
        np.testing.assert_array_equal(fast.prices, slow.prices)

    speedup = loop_elapsed / vectorised_elapsed
    print(
        f"\n8 markets x {DAYS:g} days: loop {loop_elapsed:.2f}s, "
        f"vectorised {vectorised_elapsed:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"vectorised generation is only {speedup:.1f}x faster than the "
        "per-minute loop; the ISSUE 3 acceptance floor is 10x"
    )
