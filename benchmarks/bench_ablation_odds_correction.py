"""Ablation: Equation 3's odds-correction direction.

The paper's Equation 3 multiplies the model's odds by phi-/phi+; the
statistically standard prior correction for a phi--weighted loss is
the inverse, phi+/phi- (see repro/revpred/calibration.py for the
derivation).  This ablation evaluates both directions — and no
correction — on the held-out test days, using the trained Tributary
bank where the training skew is largest and the choice matters most.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.cloud.instance import get_instance_type
from repro.market.labeling import build_training_set
from repro.market.trace import HOUR, MINUTE
from repro.revpred.calibration import OddsCorrection
from repro.revpred.evaluate import evaluate_probabilities
from repro.sim.rng import RngStream


def evaluate_directions(context):
    """F1/accuracy of the Tributary bank under each correction mode."""
    outcomes = {"none": [0, 0, 0, 0], "standard": [0, 0, 0, 0], "paper": [0, 0, 0, 0]}
    for name in context.dataset.instance_types:
        instance = get_instance_type(name)
        trace = context.dataset[name]
        test_times = np.arange(
            context.split_time + 2 * HOUR, trace.end - HOUR, 20 * MINUTE
        )
        test_set = build_training_set(
            trace,
            instance.on_demand_price,
            test_times,
            RngStream(context.seed, f"odds/{name}"),
            delta_mode="uniform",
        )
        market_predictor = context.tributary_bank.predictors[name]
        raw = market_predictor.model.predict_proba(test_set.history, test_set.present)
        fraction = market_predictor.correction.positive_fraction
        for mode, probabilities in (
            ("none", raw),
            ("standard", OddsCorrection(fraction, "standard").apply(raw)),
            ("paper", OddsCorrection(fraction, "paper").apply(raw)),
        ):
            metrics = evaluate_probabilities(probabilities, test_set.labels)
            outcomes[mode][0] += metrics.true_positives
            outcomes[mode][1] += metrics.false_positives
            outcomes[mode][2] += metrics.true_negatives
            outcomes[mode][3] += metrics.false_negatives
    from repro.revpred.evaluate import PredictionMetrics

    return {
        mode: PredictionMetrics(tp, fp, tn, fn)
        for mode, (tp, fp, tn, fn) in outcomes.items()
    }


def test_ablation_odds_correction(benchmark, context):
    results = benchmark.pedantic(evaluate_directions, args=(context,), rounds=1, iterations=1)
    rows = [
        [mode, f"{metrics.accuracy:.3f}", f"{metrics.f1:.3f}"]
        for mode, metrics in results.items()
    ]
    print()
    print(format_table(["correction", "accuracy", "F1"], rows, "Odds-correction ablation (Tributary bank, uniform-delta test)"))

    # The standard direction must not be worse than the paper-verbatim
    # direction on accuracy (the paper direction pushes a skew-trained
    # model to predict nearly everything positive).
    assert results["standard"].accuracy >= results["paper"].accuracy
