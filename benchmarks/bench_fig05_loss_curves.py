"""Fig. 5 — validation-loss curve examples.

(a) real logistic-regression training under three hyper-parameter
settings (different shapes, one curve per setting); (b) a staged
ResNet-style curve whose periodic learning-rate decay produces the
multi-stage structure EarlyCurve exists for.
"""

import numpy as np

from repro.analysis.experiments import fig5_loss_curves
from repro.analysis.reporting import format_table


def test_fig5_loss_curves(benchmark, context):
    result = benchmark.pedantic(fig5_loss_curves, args=(context,), rounds=1, iterations=1)
    print()
    print(format_table(["curve", "start", "end"], result.rows(), "Fig. 5 — loss curves"))

    # 5a: every real LoR run converges (loss decreases), and different
    # HP settings land on different curves.
    finals = []
    for steps, losses in result.lor_curves.values():
        assert losses[-1] < losses[0]
        finals.append(losses[-1])
    assert len(set(np.round(finals, 4))) > 1

    # 5b: the ResNet curve is multi-stage (Equation 7 detects >= 2).
    assert result.resnet_num_stages >= 2
