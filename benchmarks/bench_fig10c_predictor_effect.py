"""Fig. 10c — the predictor's effect on SpotTune's cost and PCR.

Runs SpotTune(theta=0.7) twice per workload, once with the RevPred
bank and once with the Tributary predictor, as the paper does to show
that prediction quality transfers to provisioning quality: with
RevPred, SpotTune yields about 25% less cost and ~24% more PCR.
"""

from repro.analysis.experiments import fig10c_predictor_effect
from repro.analysis.reporting import format_table


def test_fig10c_predictor_effect(benchmark, context):
    result = benchmark.pedantic(
        fig10c_predictor_effect, args=(context,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["workload", "predictor", "cost ($)", "PCR (norm.)"],
            result.rows(),
            "Fig. 10c — SpotTune with RevPred vs Tributary Predict",
        )
    )
    print(f"\nmean cost saving with RevPred: {result.mean_cost_saving():.1%} "
          f"(paper: ~25%)")

    # RevPred must reduce cost on average across the workloads and on
    # the majority of them individually.
    assert result.mean_cost_saving() > 0.0
    cheaper = [
        result.cost[w]["RevPred"] < result.cost[w]["Tributary Predict"]
        for w in result.cost
    ]
    assert sum(cheaper) >= len(cheaper) / 2
