"""Ablation: checkpoint policies for oversized models (§IV-F).

The paper bounds notice-window checkpoints at 7.36-15.73 GB and defers
larger models to "periodically checkpointing or prediction-based
checkpointing" (future work, implemented here).  A 20 GB model cannot
finish its upload inside the two-minute notice, so the notice-only
policy loses the unsaved progress on every revocation; the periodic
policy bounds that loss at one interval's worth of steps.
"""

from repro.core.checkpoint_policy import PeriodicPolicy, PredictionBasedPolicy
from repro.core.config import SpotTuneConfig
from repro.core.orchestrator import SpotTuneOrchestrator
from repro.revpred.predictor import OraclePredictor
from repro.workloads.spec import HyperParameterGrid, WorkloadSpec
from repro.workloads.trial import make_trials

HUGE_MODEL = WorkloadSpec(
    name="HugeNet",
    algorithm="Oversized Network",
    metric="cross_entropy",
    grid=HyperParameterGrid({"bs": (64, 128), "lr": (1e-2, 1e-3)}),
    max_trial_steps=500,
    base_seconds_per_step=40.0,
    model_size_mb=20_000.0,  # ~2.5 min upload even on m4.4xlarge
)


def run_with_policy(context, policy=None):
    trials = make_trials(HUGE_MODEL, seed=context.seed)
    orchestrator = SpotTuneOrchestrator(
        HUGE_MODEL,
        trials,
        context.dataset,
        OraclePredictor(context.dataset),
        SpotTuneConfig(theta=0.7, seed=context.seed),
        speed_model=context.speed_model,
        start_time=context.replay_start,
        checkpoint_policy=policy,
    )
    return orchestrator.run()


def test_ablation_checkpoint_policy(benchmark, context):
    def run_all():
        oracle = OraclePredictor(context.dataset)
        return {
            "notice-only": run_with_policy(context),
            "periodic(15min)": run_with_policy(context, PeriodicPolicy(interval=900.0)),
            "prediction-based": run_with_policy(
                context,
                PredictionBasedPolicy(predictor=oracle, threshold=0.5, min_interval=300.0),
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\n{'policy':18s} {'lost steps':>10s} {'failed ckpts':>12s} "
          f"{'JCT (h)':>8s} {'overhead':>9s}")
    summary = {}
    for name, run in results.items():
        lost = sum(job.lost_steps for job in run.jobs.values())
        failed = sum(job.failed_checkpoints for job in run.jobs.values())
        summary[name] = lost
        print(f"{name:18s} {lost:10.0f} {failed:12d} {run.jct / 3600:8.2f} "
              f"{run.overhead_fraction:9.1%}")

    # Notice-only genuinely loses progress on a 20 GB model.
    assert summary["notice-only"] > 0
    # Both proactive policies bound the loss far below notice-only.
    assert summary["periodic(15min)"] < 0.5 * summary["notice-only"]
    assert summary["prediction-based"] < summary["notice-only"]
