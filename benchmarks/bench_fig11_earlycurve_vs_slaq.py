"""Fig. 11 — training-trend prediction: EarlyCurve vs SLAQ.

Fits both models on the first theta = 0.7 of every ResNet
configuration's validation curve and compares final-metric prediction
errors.  SLAQ's one-stage fit cannot follow the periodic
learning-rate-decay drops, so its error is significantly higher
(paper Fig. 11b); on curves without stage structure the two coincide.
"""

import numpy as np

from repro.analysis.experiments import fig11_earlycurve_vs_slaq
from repro.analysis.reporting import format_table


def test_fig11_earlycurve_vs_slaq(benchmark, context):
    result = benchmark.pedantic(
        fig11_earlycurve_vs_slaq, args=(context,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["ResNet configuration", "EarlyCurve |err|", "SLAQ |err|"],
            result.rows(),
            "Fig. 11 — final-metric prediction error (theta = 0.7)",
        )
    )
    print(f"\nexample config: truth {result.example_truth:.4f}, "
          f"EarlyCurve {result.example_earlycurve:.4f}, "
          f"SLAQ {result.example_slaq:.4f}")
    print(f"mean SLAQ error / mean EarlyCurve error: {result.mean_error_ratio:.1f}x")

    assert len(result.earlycurve_errors) == 16
    # EarlyCurve's mean error is well below SLAQ's on staged curves.
    assert np.mean(result.earlycurve_errors) < 0.5 * np.mean(result.slaq_errors)
    # EarlyCurve wins on the clear majority of configurations.
    wins = sum(
        ec < sl for ec, sl in zip(result.earlycurve_errors, result.slaq_errors)
    )
    assert wins >= 12
    # And the example prediction is close to the truth.
    assert abs(result.example_earlycurve - result.example_truth) < abs(
        result.example_slaq - result.example_truth
    )
