"""Fig. 7 — overall cost, JCT, and performance-cost rate.

The paper's headline experiment: SpotTune (theta=0.7 and 1.0) against
Single-Spot Tune on the cheapest (r4.large) and fastest (m4.4xlarge)
instances, across all six Table II workloads.

Shape targets (paper §IV-B1): SpotTune(0.7) has the lowest cost on
every workload; SpotTune(1.0) undercuts both baselines; SpotTune's JCT
falls between the cheapest and fastest baselines; the normalised PCR
of SpotTune(0.7) tops every alternative.
"""

from repro.analysis.experiments import fig7_cost_jct_pcr
from repro.analysis.reporting import format_table


def test_fig7_cost_jct_pcr(benchmark, context):
    result = benchmark.pedantic(fig7_cost_jct_pcr, args=(context,), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["workload", "approach", "cost ($)", "JCT (h)", "PCR (norm.)"],
            result.rows(),
            "Fig. 7 — cost / JCT / PCR",
        )
    )
    summary = result.summary()
    print()
    print(
        format_table(
            ["aggregate", "measured", "paper"],
            [
                ["cost saving theta=1.0 vs cheapest", f"{summary['saving_theta10_vs_cheapest']:.1%}", "41.5%"],
                ["cost saving theta=1.0 vs fastest", f"{summary['saving_theta10_vs_fastest']:.1%}", "86.0%"],
                ["cost saving theta=0.7 vs theta=1.0", f"{summary['saving_theta07_vs_theta10']:.1%}", "57.2%"],
                ["cost saving theta=0.7 vs cheapest", f"{summary['saving_theta07_vs_cheapest']:.1%}", "75.6%"],
                ["cost saving theta=0.7 vs fastest", f"{summary['saving_theta07_vs_fastest']:.1%}", "94.2%"],
                ["PCR theta=1.0 vs cheapest", f"{summary['pcr_theta10_vs_cheapest']:.2f}x", "2.65x"],
                ["PCR theta=1.0 vs fastest", f"{summary['pcr_theta10_vs_fastest']:.2f}x", "3.36x"],
                ["PCR theta=0.7 vs cheapest", f"{summary['pcr_theta07_vs_cheapest']:.2f}x", "13.11x"],
                ["PCR theta=0.7 vs fastest", f"{summary['pcr_theta07_vs_fastest']:.2f}x", "16.61x"],
            ],
            "Fig. 7 — headline aggregates",
        )
    )

    for workload in result.cost:
        costs = result.cost[workload]
        jcts = result.jct_hours[workload]
        # SpotTune(0.7) is the cheapest approach on every workload.
        assert costs["SpotTune(theta=0.7)"] == min(costs.values()), workload
        # SpotTune(1.0) still beats both single-spot baselines.
        assert costs["SpotTune(theta=1.0)"] < costs["Single-Spot Tune (Cheapest)"], workload
        assert costs["SpotTune(theta=1.0)"] < costs["Single-Spot Tune (Fastest)"], workload
        # JCT sits between the fastest and cheapest baselines.  A job
        # whose every segment lands on the slowest instance can exceed
        # the cheapest baseline by its checkpoint/redeploy overhead, so
        # the upper bound carries a 10% tolerance.
        assert jcts["Single-Spot Tune (Fastest)"] < jcts["SpotTune(theta=1.0)"], workload
        assert (
            jcts["SpotTune(theta=1.0)"] < 1.10 * jcts["Single-Spot Tune (Cheapest)"]
        ), workload
        # SpotTune(0.7) wins the performance-cost rate everywhere.
        assert all(
            result.pcr[workload][a] <= 1.0 + 1e-9 for a in result.pcr[workload]
        ), workload
