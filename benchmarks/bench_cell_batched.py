"""Batched-core speedup: the live hot path vs the frozen scalar core.

ISSUE 7 rebuilt the per-cell hot path — vectorised curve observation
and accounting, incremental plateau detection, memoised feature rows
and history embeddings, cache-free split inference, one
``probability_many`` pass per provisioning decision — under a strict
byte-identity contract with the pre-batching code, which is kept
verbatim in :mod:`repro.core.reference`.  This benchmark drives the
most predictor-heavy golden cell (LoR at theta 0.7 over an untrained
RevPred bank, so every query pays full network inference) through both
cores, asserts the summaries are byte-identical, and enforces the
acceptance floor: the batched core is at least 5x faster.

Run with ``pytest benchmarks/bench_cell_batched.py -s``.
"""

import time

from repro.analysis.cells import run_cell
from repro.core.reference import (
    ReferenceBankPredictor,
    ReferenceCachingPredictor,
    ReferenceOrchestrator,
)
from repro.revpred.predictor import CachingPredictor
from repro.revpred.trainer import untrained_predictor_bank
from repro.sweep.cache import canonical_json

WORKLOAD = "LoR"
THETA = 0.7


def _run_live(context, bank):
    # A fresh memoising wrapper per round: warm-cache rounds would
    # flatter the measurement and the scalar core gets a fresh one too.
    return run_cell(context, WORKLOAD, THETA, CachingPredictor(bank))


def _run_reference(context, bank):
    return run_cell(
        context,
        WORKLOAD,
        THETA,
        ReferenceCachingPredictor(ReferenceBankPredictor(bank)),
        orchestrator_cls=ReferenceOrchestrator,
    )


def test_batched_cell_is_5x_faster(benchmark, context):
    bank = untrained_predictor_bank(context.dataset)

    reference_started = time.perf_counter()
    reference_summary = _run_reference(context, bank)
    reference_elapsed = time.perf_counter() - reference_started

    live_summary = benchmark.pedantic(
        _run_live, args=(context, bank), rounds=3, iterations=1, warmup_rounds=1
    )
    live_elapsed = benchmark.stats.stats.min

    assert canonical_json(live_summary) == canonical_json(reference_summary), (
        "batched core diverged from the frozen scalar core — the "
        "byte-identity contract is broken, speed is irrelevant"
    )

    speedup = reference_elapsed / live_elapsed
    print(
        f"\n{WORKLOAD} theta={THETA} untrained-bank cell: "
        f"scalar {reference_elapsed:.2f}s, batched {live_elapsed:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batched cell is only {speedup:.1f}x faster than the frozen "
        "scalar core; the ISSUE 7 acceptance floor is 5x"
    )
