"""Fig. 10a/b — revocation-prediction accuracy and F1.

RevPred vs the re-implemented Tributary predictor vs logistic
regression, trained on the first nine days of every market and
evaluated on the held-out final three, pooled across the six markets.

Shape targets: RevPred posts both the best accuracy and the best F1
(the paper reports +20.3% accuracy and +34.0% F1 over Tributary).
"""

from repro.analysis.experiments import fig10ab_revpred_accuracy
from repro.analysis.reporting import format_table


def test_fig10ab_revpred_accuracy(benchmark, context):
    result = benchmark.pedantic(
        fig10ab_revpred_accuracy, args=(context,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["model", "accuracy", "F1", "test samples"],
            result.rows(),
            "Fig. 10a/b — prediction quality (pooled over 6 markets)",
        )
    )
    gains = result.improvement_over_tributary()
    print(f"\nRevPred vs Tributary: accuracy +{gains['accuracy_gain']:.1%} "
          f"(paper +20.3%), F1 +{gains['f1_gain']:.1%} (paper +34.0%)")

    revpred = result.metrics["RevPred"]
    tributary = result.metrics["Tributary Predict"]
    logistic = result.metrics["Logistic Regression"]
    # RevPred leads on both metrics.
    assert revpred.accuracy > tributary.accuracy
    assert revpred.accuracy > logistic.accuracy
    assert revpred.f1 > tributary.f1
    assert revpred.f1 > logistic.f1
    # And is meaningfully better than coin-flipping on the border set.
    assert revpred.accuracy > 0.55
