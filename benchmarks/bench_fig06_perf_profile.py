"""Fig. 6 — performance profiling across the instance pool.

Seconds-per-step of the ResNet workload on every Table III instance,
plus the §IV-A5 stability check: the step-time coefficient of
variation stays under 0.1, which is what makes the online performance
matrix M practical.
"""

from repro.analysis.experiments import fig6_performance_profile
from repro.analysis.reporting import format_table


def test_fig6_performance_profile(benchmark, context):
    result = benchmark.pedantic(
        fig6_performance_profile, args=(context,), rounds=1, iterations=1
    )
    print()
    print(format_table(["instance", "speed"], result.rows(), "Fig. 6 — ResNet speed profile"))

    speeds = result.seconds_per_step
    # Paper's observation: price does not buy speed linearly — the
    # pricier r3.xlarge is slower than r4.xlarge.
    assert speeds["r3.xlarge"] > speeds["r4.xlarge"]
    # The 16-core instance is the fastest overall.
    assert min(speeds, key=speeds.get) == "m4.4xlarge"
    # §IV-A5: step-time COV below 0.1.
    assert result.step_time_cov < 0.1
