"""Fig. 8 — SpotTune's sensitivity against theta.

Sweeps theta from 0.1 to 1.0 across the six workloads: cost grows
roughly proportionally with theta, JCT near-linearly, and selection
accuracy rises with theta — top-3 accuracy reaching 100% at
theta >= 0.7, the paper's minimum reliable setting.
"""

import numpy as np

from repro.analysis.experiments import fig8_theta_sensitivity
from repro.analysis.reporting import format_table


def test_fig8_theta_sensitivity(benchmark, context):
    result = benchmark.pedantic(
        fig8_theta_sensitivity, args=(context,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["theta", "mean cost ($)", "mean JCT (h)", "top-1 acc", "top-3 acc"],
            result.rows(),
            "Fig. 8 — sensitivity against theta",
        )
    )

    thetas = np.asarray(result.thetas)
    for workload, costs in result.cost.items():
        # Cost grows with theta overall (paper: "the overall cost is
        # proportional to theta", with occasional local inversions from
        # refund luck — compare the endpoints).
        assert costs[-1] > costs[0], workload
        correlation = np.corrcoef(thetas, costs)[0, 1]
        assert correlation > 0.7, (workload, correlation)
    for workload, jcts in result.jct_hours.items():
        correlation = np.corrcoef(thetas, jcts)[0, 1]
        assert correlation > 0.9, (workload, correlation)  # near-linear

    # Selection accuracy: perfect top-3 at theta >= 0.7.
    for theta, top3 in zip(result.thetas, result.top3_accuracy):
        if theta >= 0.7:
            assert top3 == 1.0, (theta, top3)
    # Low theta is allowed to mispredict; accuracy should not degrade
    # as theta grows.
    assert result.top3_accuracy[-1] >= result.top3_accuracy[0]
    assert result.top1_accuracy[-1] >= result.top1_accuracy[0]
