"""Shared fixtures for the benchmark suite.

The experiment context (synthetic dataset + the trained RevPred and
Tributary banks) is built once per session; individual figure
benchmarks reuse it, so bank training time is paid once and each
benchmark measures its own experiment.

Set ``REPRO_BENCH_SCALE=paper`` for paper-scale model dimensions and
training schedules (slower), or leave the default ``small``.
"""

import os

import pytest

from repro.analysis.context import build_context


@pytest.fixture(scope="session")
def context():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return build_context(seed=0, scale=scale)
