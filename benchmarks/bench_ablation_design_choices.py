"""Ablations of SpotTune's design choices (DESIGN.md §6).

Each ablation removes one mechanism and measures the damage, using the
fast oracle predictor so the comparison isolates the mechanism itself:

1. **First-hour refund rule off** — the §V-A degenerate scenario:
   without refunds SpotTune loses its free compute and its advantage
   over the cheapest baseline shrinks dramatically.
2. **Hourly VM recycling off** — without the one-instance-hour recycle
   (Algorithm 1 line 31), jobs ride VMs past the refund boundary and
   revocations stop being free.
3. **EarlyCurve off (theta=1.0)** vs on (theta=0.7) — the early-
   shutdown contribution in isolation.

The variants are one declarative :class:`ScenarioGrid` executed by the
:class:`SweepRunner` — the ablation knobs (``refund_enabled``,
``reschedule_after``) are ordinary sweep axes.
"""

from repro.sweep import Scenario, ScenarioGrid, SweepRunner

WORKLOAD = "LoR"


def make_variants(context) -> dict[str, Scenario]:
    """The ablation cells, pinned to the session context's seed/scale."""
    base = dict(
        workload=WORKLOAD, predictor="oracle", seed=context.seed, scale=context.scale
    )
    return {
        "full": Scenario(theta=0.7, **base),
        "no_refund": Scenario(theta=0.7, refund_enabled=False, **base),
        "no_recycle": Scenario(theta=0.7, reschedule_after=1e9, **base),
        "no_earlycurve": Scenario(theta=1.0, **base),
        "cheapest-spot": Scenario(
            workload=WORKLOAD,
            approach="single_spot",
            instance="r4.large",
            seed=context.seed,
            scale=context.scale,
        ),
    }


def test_ablation_design_choices(benchmark, context):
    runner = SweepRunner(context=context)
    variants = make_variants(context)
    grid = ScenarioGrid(variants.values())

    def run_all():
        sweep = runner.run(grid)
        by_id = {cell.scenario.fingerprint(): cell.summary for cell in sweep}
        return {
            name: by_id[scenario.fingerprint()]
            for name, scenario in variants.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\n{'variant':16s} {'cost ($)':>9s} {'free steps':>11s} {'JCT (h)':>8s}")
    for name, summary in results.items():
        print(
            f"{name:16s} {summary['cost']:9.2f} "
            f"{summary['free_step_fraction']:11.1%} {summary['jct_hours']:8.2f}"
        )

    full = results["full"]
    cheapest = results["cheapest-spot"]
    # Removing the refund rule strips all free compute and raises cost.
    assert results["no_refund"]["free_step_fraction"] == 0.0
    assert results["no_refund"]["cost"] > full["cost"]
    # Without hourly recycling, refund capture collapses.
    assert results["no_recycle"]["free_step_fraction"] < 0.5 * full["free_step_fraction"]
    # EarlyCurve's early shutdown always cuts steps and wall time; its
    # *cost* effect is usually a cut too, but the paper itself notes
    # occasional inversions where a longer run lucks into more refunded
    # hours (§IV-B2, the SVM theta=0.8 example) — so assert the
    # guaranteed effects and a loose cost bound.
    no_earlycurve = results["no_earlycurve"]
    assert full["steps_completed"] < 0.75 * no_earlycurve["steps_completed"]
    assert full["jct_hours"] < no_earlycurve["jct_hours"]
    assert full["cost"] < 1.5 * no_earlycurve["cost"]
    # Even crippled, SpotTune never exceeds ~1.6x the cheapest baseline
    # cost (it still tracks the lowest step cost, §V-A).
    assert results["no_refund"]["cost"] < 1.6 * cheapest["cost"]
