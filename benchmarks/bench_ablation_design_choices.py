"""Ablations of SpotTune's design choices (DESIGN.md §6).

Each ablation removes one mechanism and measures the damage, using the
fast oracle predictor so the comparison isolates the mechanism itself:

1. **First-hour refund rule off** — the §V-A degenerate scenario:
   without refunds SpotTune loses its free compute and its advantage
   over the cheapest baseline shrinks dramatically.
2. **Hourly VM recycling off** — without the one-instance-hour recycle
   (Algorithm 1 line 31), jobs ride VMs past the refund boundary and
   revocations stop being free.
3. **EarlyCurve off (theta=1.0)** vs on (theta=0.7) — the early-
   shutdown contribution in isolation.
"""

import pytest

from repro.core.baselines import run_single_spot
from repro.core.config import SpotTuneConfig
from repro.core.orchestrator import SpotTuneOrchestrator
from repro.revpred.predictor import OraclePredictor
from repro.workloads.catalog import get_workload
from repro.workloads.trial import make_trials

WORKLOAD = "LoR"


def run_variant(context, theta=0.7, reschedule_after=3600.0, refund_enabled=True):
    workload = get_workload(WORKLOAD)
    trials = make_trials(workload, seed=context.seed)
    orchestrator = SpotTuneOrchestrator(
        workload,
        trials,
        context.dataset,
        OraclePredictor(context.dataset),
        SpotTuneConfig(theta=theta, seed=context.seed, reschedule_after=reschedule_after),
        speed_model=context.speed_model,
        start_time=context.replay_start,
    )
    orchestrator.provider.billing.refund_enabled = refund_enabled
    return orchestrator.run()


def test_ablation_design_choices(benchmark, context):
    def run_all():
        return {
            "full": run_variant(context),
            "no_refund": run_variant(context, refund_enabled=False),
            "no_recycle": run_variant(context, reschedule_after=1e9),
            "no_earlycurve": run_variant(context, theta=1.0),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cheapest = run_single_spot(
        get_workload(WORKLOAD),
        make_trials(get_workload(WORKLOAD), seed=context.seed),
        context.dataset,
        "r4.large",
        speed_model=context.speed_model,
        start_time=context.replay_start,
    )

    print(f"\n{'variant':16s} {'cost ($)':>9s} {'free steps':>11s} {'JCT (h)':>8s}")
    for name, run in results.items():
        print(f"{name:16s} {run.total_paid:9.2f} {run.free_step_fraction:11.1%} "
              f"{run.jct / 3600:8.2f}")
    print(f"{'cheapest-spot':16s} {cheapest.total_paid:9.2f} {'0.0%':>11s} "
          f"{cheapest.jct / 3600:8.2f}")

    full = results["full"]
    # Removing the refund rule strips all free compute and raises cost.
    assert results["no_refund"].free_step_fraction == 0.0
    assert results["no_refund"].total_paid > full.total_paid
    # Without hourly recycling, refund capture collapses.
    assert results["no_recycle"].free_step_fraction < 0.5 * full.free_step_fraction
    # EarlyCurve's early shutdown always cuts steps and wall time; its
    # *cost* effect is usually a cut too, but the paper itself notes
    # occasional inversions where a longer run lucks into more refunded
    # hours (§IV-B2, the SVM theta=0.8 example) — so assert the
    # guaranteed effects and a loose cost bound.
    no_earlycurve = results["no_earlycurve"]
    steps = lambda run: sum(job.steps_completed for job in run.jobs.values())
    assert steps(full) < 0.75 * steps(no_earlycurve)
    assert full.jct < no_earlycurve.jct
    assert full.total_paid < 1.5 * no_earlycurve.total_paid
    # Even crippled, SpotTune never exceeds ~1.6x the cheapest baseline
    # cost (it still tracks the lowest step cost, §V-A).
    assert results["no_refund"].total_paid < 1.6 * cheapest.total_paid
