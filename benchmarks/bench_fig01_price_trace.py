"""Fig. 1 — spot price of r3.xlarge vs its on-demand price.

Regenerates the paper's motivating series: eleven days of a volatile
spot market whose price sits at a deep discount most of the time and
spikes far above on-demand during demand surges.
"""

from repro.analysis.experiments import fig1_price_trace
from repro.analysis.reporting import format_table


def test_fig1_price_trace(benchmark, context):
    result = benchmark.pedantic(
        fig1_price_trace, args=(context,), rounds=1, iterations=1
    )
    print()
    print(format_table(["series property", "value"], result.rows(), "Fig. 1 — r3.xlarge spot price"))

    # The paper's qualitative claims about the series.
    assert result.prices.min() < 0.5 * result.on_demand_price, "deep discount regime"
    assert result.prices.max() > result.on_demand_price, "spikes above on-demand"
    assert len(result.times) > 100, "sparse but non-trivial record count"
