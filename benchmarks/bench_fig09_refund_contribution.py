"""Fig. 9 — contribution of refunded (free) resources.

At theta = 0.7, measures (a) the share of training steps executed on
VM segments whose instance-hour was refunded — the paper reports an
average of 77.5% — and (b) the refunded value relative to all consumed
compute value.  The refund is the reason SpotTune is simultaneously
faster and cheaper than the cheapest single-spot baseline.
"""

from repro.analysis.experiments import fig9_refund_contribution
from repro.analysis.reporting import format_table


def test_fig9_refund_contribution(benchmark, context):
    result = benchmark.pedantic(
        fig9_refund_contribution, args=(context,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["workload", "free steps", "refund share of gross"],
            result.rows(),
            "Fig. 9 — refunded resources (theta = 0.7)",
        )
    )
    print(f"\nmean free-step contribution: {result.mean_free_fraction:.1%} "
          f"(paper: 77.5%)")

    # Refunded resources must carry a material share of the work on
    # every workload.  The paper reports 77.5% on the 2017 AWS traces;
    # on the synthetic market the oracle upper bound is ~25-50% (jump
    # arrivals are less predictable than real spot demand), so the
    # shape claim here is "refunds are a significant, non-accidental
    # contributor", not the paper's absolute level (see EXPERIMENTS.md).
    for workload, fraction in result.free_step_fraction.items():
        assert fraction > 0.08, (workload, fraction)
    assert result.mean_free_fraction > 0.12
    for workload, fraction in result.refund_fraction.items():
        assert 0.0 < fraction < 1.0, (workload, fraction)
